package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func diamond() *Graph {
	// A -> B, A -> C, B -> D, C -> D
	return FromEdgeList([]string{"A", "B", "C", "D"}, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 5; i++ {
		id := g.AddNode("x")
		if int(id) != i {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestZeroWeightNormalisedToOne(t *testing.T) {
	g := New(1)
	v := g.AddNodeFull(Node{Label: "a"})
	if w := g.Weight(v); w != 1 {
		t.Fatalf("Weight = %v, want 1", w)
	}
	u := g.AddNodeFull(Node{Label: "b", Weight: 2.5})
	if w := g.Weight(u); w != 2.5 {
		t.Fatalf("Weight = %v, want 2.5", w)
	}
}

func TestParallelEdgesDeduplicated(t *testing.T) {
	g := New(2)
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
	if got := len(g.Post(a)); got != 1 {
		t.Fatalf("len(Post) = %d, want 1", got)
	}
	if got := len(g.Prev(b)); got != 1 {
		t.Fatalf("len(Prev) = %d, want 1", got)
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond()
	cases := []struct {
		from, to NodeID
		want     bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 3, true}, {2, 3, true},
		{1, 0, false}, {0, 3, false}, {3, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.from, c.to); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestPrevPostConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(50)
	for i := 0; i < 50; i++ {
		g.AddNode("n")
	}
	for i := 0; i < 300; i++ {
		g.AddEdge(NodeID(rng.Intn(50)), NodeID(rng.Intn(50)))
	}
	g.Finish()
	// Every edge in post must appear in the target's prev, and vice versa.
	g.Edges(func(from, to NodeID) bool {
		found := false
		for _, p := range g.Prev(to) {
			if p == from {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge (%d,%d) in post but %d not in prev(%d)", from, to, from, to)
		}
		return true
	})
	total := 0
	for v := 0; v < g.NumNodes(); v++ {
		total += len(g.Prev(NodeID(v)))
	}
	if total != g.NumEdges() {
		t.Fatalf("sum of in-degrees %d != NumEdges %d", total, g.NumEdges())
	}
}

func TestDegree(t *testing.T) {
	g := diamond()
	if d := g.Degree(0); d != 2 {
		t.Errorf("Degree(A) = %d, want 2", d)
	}
	if d := g.Degree(3); d != 2 {
		t.Errorf("Degree(D) = %d, want 2", d)
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(B) = %d, want 2", d)
	}
}

func TestBFSOrder(t *testing.T) {
	g := diamond()
	var order []NodeID
	g.BFS(0, func(v NodeID) bool {
		order = append(order, v)
		return true
	})
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Fatalf("BFS order = %v, want [0 1 2 3]", order)
	}
}

func TestDFSVisitsAllReachable(t *testing.T) {
	g := diamond()
	seen := map[NodeID]bool{}
	g.DFS(0, func(v NodeID) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("DFS visited %d nodes, want 4", len(seen))
	}
}

func TestTraversalEarlyStop(t *testing.T) {
	g := diamond()
	count := 0
	g.BFS(0, func(NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("BFS early stop visited %d, want 2", count)
	}
	count = 0
	g.DFS(0, func(NodeID) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("DFS early stop visited %d, want 1", count)
	}
}

func TestHasPathExcludesEmptyPath(t *testing.T) {
	g := diamond()
	if !g.HasPath(0, 3) {
		t.Error("HasPath(A,D) = false, want true")
	}
	if g.HasPath(3, 0) {
		t.Error("HasPath(D,A) = true, want false")
	}
	// No self-loop: the empty path must not count.
	if g.HasPath(0, 0) {
		t.Error("HasPath(A,A) = true on loop-free graph, want false")
	}
}

func TestHasPathSelfLoop(t *testing.T) {
	g := FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	if !g.HasPath(0, 0) {
		t.Error("HasPath on self-loop = false, want true")
	}
}

func TestHasPathCycle(t *testing.T) {
	g := FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	for v := NodeID(0); v < 3; v++ {
		for u := NodeID(0); u < 3; u++ {
			if !g.HasPath(v, u) {
				t.Errorf("HasPath(%d,%d) in 3-cycle = false, want true", v, u)
			}
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := diamond()
	p := g.ShortestPath(0, 3)
	if len(p) != 3 || p[0] != 0 || p[2] != 3 {
		t.Fatalf("ShortestPath(A,D) = %v, want length-3 path A..D", p)
	}
	if g.ShortestPath(3, 0) != nil {
		t.Error("ShortestPath(D,A) != nil, want nil")
	}
}

func TestShortestPathSelfLoop(t *testing.T) {
	g := FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	p := g.ShortestPath(0, 0)
	if len(p) != 2 || p[0] != 0 || p[1] != 0 {
		t.Fatalf("ShortestPath self-loop = %v, want [0 0]", p)
	}
}

func TestShortestPathEdgesExist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(30)
	for i := 0; i < 30; i++ {
		g.AddNode("n")
	}
	for i := 0; i < 90; i++ {
		g.AddEdge(NodeID(rng.Intn(30)), NodeID(rng.Intn(30)))
	}
	g.Finish()
	for u := NodeID(0); u < 30; u++ {
		for v := NodeID(0); v < 30; v++ {
			p := g.ShortestPath(u, v)
			if (p != nil) != g.HasPath(u, v) {
				t.Fatalf("ShortestPath(%d,%d) presence disagrees with HasPath", u, v)
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("path %v uses missing edge (%d,%d)", p, p[i], p[i+1])
				}
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1} and {2}.
	g := FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}})
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0])+len(comps[1]) != 3 {
		t.Fatalf("components cover %d nodes, want 3", len(comps[0])+len(comps[1]))
	}
}

func TestConnectedComponentsIgnoreDirection(t *testing.T) {
	// 0 -> 1 <- 2 is one undirected component.
	g := FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {2, 1}})
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
}

func TestIsDAGAndTopoSort(t *testing.T) {
	g := diamond()
	if !g.IsDAG() {
		t.Error("diamond should be a DAG")
	}
	order := g.TopoSort()
	pos := map[NodeID]int{}
	for i, v := range order {
		pos[v] = i
	}
	g.Edges(func(from, to NodeID) bool {
		if pos[from] >= pos[to] {
			t.Errorf("topo order violates edge (%d,%d)", from, to)
		}
		return true
	})

	cyc := FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}, {1, 0}})
	if cyc.IsDAG() {
		t.Error("2-cycle reported as DAG")
	}
	if cyc.TopoSort() != nil {
		t.Error("TopoSort of cyclic graph should be nil")
	}
	loop := FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	if loop.IsDAG() {
		t.Error("self-loop reported as DAG")
	}
}

func TestSCCSimple(t *testing.T) {
	// 0 <-> 1 form one SCC; 2 is alone; 1 -> 2.
	g := FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	r := g.SCC()
	if r.NumComponents() != 2 {
		t.Fatalf("got %d SCCs, want 2", r.NumComponents())
	}
	if r.Comp[0] != r.Comp[1] {
		t.Error("0 and 1 should share an SCC")
	}
	if r.Comp[2] == r.Comp[0] {
		t.Error("2 should be in its own SCC")
	}
}

func TestSCCReverseTopological(t *testing.T) {
	// Component order property: an edge a→b across components implies
	// Comp[a] > Comp[b] (reverse topological).
	rng := rand.New(rand.NewSource(11))
	g := New(40)
	for i := 0; i < 40; i++ {
		g.AddNode("n")
	}
	for i := 0; i < 120; i++ {
		g.AddEdge(NodeID(rng.Intn(40)), NodeID(rng.Intn(40)))
	}
	g.Finish()
	r := g.SCC()
	g.Edges(func(from, to NodeID) bool {
		if r.Comp[from] != r.Comp[to] && r.Comp[from] <= r.Comp[to] {
			t.Fatalf("edge (%d,%d): comp %d <= %d violates reverse topo order",
				from, to, r.Comp[from], r.Comp[to])
		}
		return true
	})
}

func TestSCCMutualReachability(t *testing.T) {
	// Property: two nodes share an SCC iff each reaches the other.
	rng := rand.New(rand.NewSource(13))
	g := New(25)
	for i := 0; i < 25; i++ {
		g.AddNode("n")
	}
	for i := 0; i < 60; i++ {
		g.AddEdge(NodeID(rng.Intn(25)), NodeID(rng.Intn(25)))
	}
	g.Finish()
	r := g.SCC()
	reach := make([][]bool, 25)
	for v := 0; v < 25; v++ {
		reach[v] = g.ReachableFrom(NodeID(v))
	}
	for a := 0; a < 25; a++ {
		for b := 0; b < 25; b++ {
			same := r.Comp[a] == r.Comp[b]
			mutual := reach[a][b] && reach[b][a]
			if same != mutual {
				t.Fatalf("nodes %d,%d: sameSCC=%v mutual=%v", a, b, same, mutual)
			}
		}
	}
}

func TestCondense(t *testing.T) {
	g := FromEdgeList([]string{"a", "b", "c", "d"},
		[][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}})
	dag, scc, selfReach := g.Condense()
	if scc.NumComponents() != 2 {
		t.Fatalf("got %d SCCs, want 2", scc.NumComponents())
	}
	if !dag.IsDAG() {
		t.Error("condensation must be a DAG")
	}
	if dag.NumEdges() != 1 {
		t.Errorf("condensation edges = %d, want 1", dag.NumEdges())
	}
	for i := 0; i < 2; i++ {
		if !selfReach[i] {
			t.Errorf("component %d should be self-reaching (size 2)", i)
		}
	}
}

func TestCondenseSelfLoop(t *testing.T) {
	g := FromEdgeList([]string{"a", "b"}, [][2]int{{0, 0}, {0, 1}})
	_, scc, selfReach := g.Condense()
	if !selfReach[scc.Comp[0]] {
		t.Error("self-loop component should be self-reaching")
	}
	if selfReach[scc.Comp[1]] {
		t.Error("plain singleton should not be self-reaching")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond()
	sub, orig := g.InducedSubgraph([]NodeID{0, 1, 3})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.NumNodes())
	}
	// Edges (0,1) and (1,3) survive; (0,2),(2,3) drop.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if g.Label(orig[0]) != sub.Label(0) {
		t.Error("label mismatch after induction")
	}
}

func TestInducedSubgraphDropsDuplicates(t *testing.T) {
	g := diamond()
	sub, _ := g.InducedSubgraph([]NodeID{1, 1, 1})
	if sub.NumNodes() != 1 {
		t.Fatalf("sub nodes = %d, want 1", sub.NumNodes())
	}
}

func TestReverse(t *testing.T) {
	g := diamond()
	r := g.Reverse()
	g.Edges(func(from, to NodeID) bool {
		if !r.HasEdge(to, from) {
			t.Errorf("reverse missing edge (%d,%d)", to, from)
		}
		return true
	})
	if r.NumEdges() != g.NumEdges() {
		t.Errorf("reverse edges = %d, want %d", r.NumEdges(), g.NumEdges())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := diamond()
	c := g.Clone()
	if !Equal(g, c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(3, 0)
	if Equal(g, c) {
		t.Fatal("mutating clone affected original")
	}
	if g.HasEdge(3, 0) {
		t.Fatal("original gained an edge from clone mutation")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond()
	g.SetWeight(2, 4.5)
	g.SetContent(1, "books and more books")
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !Equal(g, got) {
		t.Fatalf("round trip mismatch: %s vs %s", g, got)
	}
}

func TestJSONRejectsBadEdges(t *testing.T) {
	bad := `{"nodes":[{"label":"a"}],"edges":[[0,5]]}`
	g := New(0)
	if err := g.UnmarshalJSON([]byte(bad)); err == nil {
		t.Fatal("expected error for out-of-range edge")
	}
}

func TestDOTContainsNodesAndEdges(t *testing.T) {
	g := diamond()
	dot := g.DOT("d")
	for _, want := range []string{`n0 [label="A"]`, "n0 -> n1", "n2 -> n3"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestStats(t *testing.T) {
	g := diamond()
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDeg != 2 {
		t.Errorf("AvgDeg = %v, want 2", s.AvgDeg)
	}
	if s.MaxDeg != 2 {
		t.Errorf("MaxDeg = %v, want 2", s.MaxDeg)
	}
}

func TestTopKByDegree(t *testing.T) {
	// Star: center has degree 4, leaves 1.
	g := FromEdgeList([]string{"c", "l", "l", "l", "l"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	top := TopKByDegree(g, 1)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("TopK(1) = %v, want [0]", top)
	}
	if got := TopKByDegree(g, 100); len(got) != 5 {
		t.Fatalf("TopK over size = %v, want all 5", got)
	}
}

func TestDegreeSkeleton(t *testing.T) {
	g := FromEdgeList([]string{"c", "l", "l", "l", "l"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	// avgDeg = 8/5 = 1.6, maxDeg = 4. α = 0.2 → threshold 2.4: only center.
	keep := DegreeSkeleton(g, 0.2)
	if len(keep) != 1 || keep[0] != 0 {
		t.Fatalf("skeleton = %v, want [0]", keep)
	}
	// α = 0 → threshold 1.6: still only center (leaves have degree 1).
	if keep := DegreeSkeleton(g, 0); len(keep) != 1 {
		t.Fatalf("skeleton α=0 = %v, want [0]", keep)
	}
}

func TestLabelHelpers(t *testing.T) {
	g := FromEdgeList([]string{"b", "a", "b"}, nil)
	if got := g.FindLabel("a"); got != 1 {
		t.Errorf("FindLabel = %d, want 1", got)
	}
	if got := g.FindLabel("zzz"); got != Invalid {
		t.Errorf("FindLabel missing = %d, want Invalid", got)
	}
	ls := g.LabelSet()
	if len(ls) != 2 || ls[0] != "a" || ls[1] != "b" {
		t.Errorf("LabelSet = %v", ls)
	}
}

// quick-check: for random graphs, ReachableFrom agrees with repeated HasEdge
// chains along BFS trees, and every SCC member set is consistent with Comp.
func TestQuickSCCMembersConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g.Finish()
		r := g.SCC()
		covered := 0
		for id, ms := range r.Members {
			for _, v := range ms {
				if r.Comp[v] != id {
					return false
				}
				covered++
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode("n")
		}
		for i := 0; i < n*3; i++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g.Finish()
		return Equal(g, g.Reverse().Reverse())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	g := New(1)
	g.AddNode("a")
	g.Label(5)
}
