package graph

import (
	"fmt"
	"sort"
)

// MergePatches composes a sequence of patches against a base graph into
// one equivalent patch: applying the result to base yields exactly the
// graph that applying the inputs one after another would. This is what
// the engine's patch-coalescing layer commits — one WAL append and one
// closure update per burst instead of one per patch.
//
// Edge operations are resolved to their net effect through a per-edge
// state machine seeded from base, so duplicate adds collapse, a delete
// followed by a re-add cancels, and an add followed by a delete
// disappears entirely. A delete of an edge that does not exist at its
// point in the sequence is an error, mirroring the failure sequential
// application would hit. SetContent entries keep only the last write
// per node. The output is deterministic (edges and content sorted), so
// the merged patch is stable across WAL replay and replication.
//
// The merged patch may be empty (p.Empty()) when the inputs cancel out.
func MergePatches(base *Graph, patches ...*Patch) (*Patch, error) {
	n := base.NumNodes()
	merged := &Patch{}
	content := make(map[NodeID]string)

	// cur tracks edge existence through the sequence, lazily seeded
	// from base; exists0 remembers the seed so the final patch only
	// carries net changes.
	cur := make(map[[2]NodeID]bool)
	exists0 := make(map[[2]NodeID]bool)
	lookup := func(e [2]NodeID) bool {
		if v, ok := cur[e]; ok {
			return v
		}
		v := int(e[0]) < base.NumNodes() && int(e[1]) < base.NumNodes() && base.HasEdge(e[0], e[1])
		cur[e] = v
		exists0[e] = v
		return v
	}

	for i, p := range patches {
		if p == nil || p.Empty() {
			continue
		}
		if err := p.Validate(n); err != nil {
			return nil, fmt.Errorf("graph: merge patch %d: %w", i, err)
		}
		merged.AddNodes = append(merged.AddNodes, p.AddNodes...)
		n += len(p.AddNodes)
		for _, cu := range p.SetContent {
			content[cu.Node] = cu.Content
		}
		for _, e := range p.DelEdges {
			if !lookup(e) {
				return nil, fmt.Errorf("graph: merge patch %d deletes absent edge %d→%d", i, e[0], e[1])
			}
			cur[e] = false
		}
		for _, e := range p.AddEdges {
			lookup(e) // seed exists0 before overwriting
			cur[e] = true
		}
	}

	for e, v := range cur {
		switch {
		case v && !exists0[e]:
			merged.AddEdges = append(merged.AddEdges, e)
		case !v && exists0[e]:
			merged.DelEdges = append(merged.DelEdges, e)
		}
	}
	sortEdges(merged.AddEdges)
	sortEdges(merged.DelEdges)

	for node, text := range content {
		merged.SetContent = append(merged.SetContent, ContentUpdate{Node: node, Content: text})
	}
	sort.Slice(merged.SetContent, func(i, j int) bool {
		return merged.SetContent[i].Node < merged.SetContent[j].Node
	})
	return merged, nil
}

// Merge composes p followed by q against base: a two-patch convenience
// over MergePatches.
func (p *Patch) Merge(base *Graph, q *Patch) (*Patch, error) {
	return MergePatches(base, p, q)
}

func sortEdges(es [][2]NodeID) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}
