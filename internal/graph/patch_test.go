package graph

import (
	"math/rand"
	"testing"
)

func TestApplyPatchBasics(t *testing.T) {
	g := FromEdgeList([]string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	p := &Patch{
		AddNodes:   []Node{{Label: "D", Weight: 2, Content: "new page"}},
		SetContent: []ContentUpdate{{Node: 0, Content: "rewritten"}},
		DelEdges:   [][2]NodeID{{2, 0}},
		AddEdges:   [][2]NodeID{{2, 3}, {3, 0}},
	}
	ng, err := g.ApplyPatch(p)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver is untouched.
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("receiver mutated: %v", g)
	}
	if g.Content(0) != "" {
		t.Fatalf("receiver content mutated: %q", g.Content(0))
	}
	if ng.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", ng.NumNodes())
	}
	if ng.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", ng.NumEdges())
	}
	if ng.HasEdge(2, 0) {
		t.Fatal("deleted edge 2→0 survived")
	}
	if !ng.HasEdge(2, 3) || !ng.HasEdge(3, 0) {
		t.Fatal("added edges missing")
	}
	if ng.Content(0) != "rewritten" {
		t.Fatalf("content(0) = %q", ng.Content(0))
	}
	if ng.Label(3) != "D" || ng.Weight(3) != 2 || ng.Content(3) != "new page" {
		t.Fatalf("added node wrong: %+v", ng.Node(3))
	}
	// Prev rows stay consistent with Post rows after deletion.
	if got := ng.Prev(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("prev(0) = %v, want [3]", got)
	}
}

func TestApplyPatchValidation(t *testing.T) {
	g := FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	cases := []struct {
		name string
		p    Patch
	}{
		{"add edge out of range", Patch{AddEdges: [][2]NodeID{{0, 5}}}},
		{"add edge negative", Patch{AddEdges: [][2]NodeID{{-1, 0}}}},
		{"del edge out of range", Patch{DelEdges: [][2]NodeID{{3, 0}}}},
		{"del absent edge", Patch{DelEdges: [][2]NodeID{{1, 0}}}},
		{"set content out of range", Patch{SetContent: []ContentUpdate{{Node: 9}}}},
	}
	for _, tc := range cases {
		if _, err := g.ApplyPatch(&tc.p); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Edges may target the patch's own added nodes.
	ng, err := g.ApplyPatch(&Patch{AddNodes: []Node{{Label: "C"}}, AddEdges: [][2]NodeID{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !ng.HasEdge(1, 2) {
		t.Fatal("edge to added node missing")
	}
}

func TestApplyPatchDeleteThenAdd(t *testing.T) {
	g := FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	ng, err := g.ApplyPatch(&Patch{DelEdges: [][2]NodeID{{0, 1}}, AddEdges: [][2]NodeID{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !ng.HasEdge(0, 1) {
		t.Fatal("delete-then-add should re-create the edge")
	}
	if ng.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", ng.NumEdges())
	}
}

func TestApplyPatchEmpty(t *testing.T) {
	g := FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	p := &Patch{}
	if !p.Empty() {
		t.Fatal("zero patch not Empty")
	}
	ng, err := g.ApplyPatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, ng) {
		t.Fatal("empty patch changed the graph")
	}
}

// TestApplyPatchSharesUntouchedRows pins the copy-on-write contract:
// adjacency rows the patch does not touch are physically shared with
// the receiver (the storm-throughput optimisation), touched rows are
// private copies, and the receiver is bit-for-bit unchanged.
func TestApplyPatchSharesUntouchedRows(t *testing.T) {
	g := FromEdgeList([]string{"A", "B", "C", "D"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	before := g.Clone()
	ng, err := g.ApplyPatch(&Patch{
		DelEdges: [][2]NodeID{{0, 2}},
		AddEdges: [][2]NodeID{{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, before) {
		t.Fatal("patching mutated the receiver")
	}
	// Node 2's successor row was never written: shared.
	if &g.Post(2)[0] != &ng.Post(2)[0] {
		t.Fatal("untouched row was copied")
	}
	// Node 0 lost an out-edge and node 1 gained one: private copies.
	if &g.Post(0)[0] == &ng.Post(0)[0] {
		t.Fatal("deleted-from row still shared")
	}
	if &g.Post(1)[0] == &ng.Post(1)[0] {
		t.Fatal("added-to row still shared")
	}
	if g.HasEdge(0, 2) != true || ng.HasEdge(0, 2) != false || !ng.HasEdge(1, 3) {
		t.Fatal("patch semantics broken")
	}
}

// TestApplyPatchEquivalence quickchecks copy-on-write patching against
// rebuilding the graph from scratch with the same final edge set.
func TestApplyPatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		g := New(n)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('A' + i))
			g.AddNode(labels[i])
		}
		type edge = [2]NodeID
		present := map[edge]bool{}
		for i := 0; i < n*2; i++ {
			e := edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
			g.AddEdge(e[0], e[1])
			present[e] = true
		}
		g.Finish()

		var p Patch
		add := 1 + rng.Intn(3)
		for i := 0; i < add; i++ {
			p.AddNodes = append(p.AddNodes, Node{Label: "N", Weight: 1})
		}
		total := n + add
		// Delete a random subset of existing edges.
		for e := range present {
			if rng.Intn(3) == 0 {
				p.DelEdges = append(p.DelEdges, e)
				delete(present, e)
			}
		}
		for i := 0; i < 4; i++ {
			e := edge{NodeID(rng.Intn(total)), NodeID(rng.Intn(total))}
			p.AddEdges = append(p.AddEdges, e)
			present[e] = true
		}

		got, err := g.ApplyPatch(&p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := New(total)
		for v := 0; v < n; v++ {
			want.AddNodeFull(g.Node(NodeID(v)))
		}
		for _, nd := range p.AddNodes {
			want.AddNodeFull(nd)
		}
		for e := range present {
			want.AddEdge(e[0], e[1])
		}
		want.Finish()
		if !Equal(got, want) {
			t.Fatalf("trial %d: patched graph %v != rebuilt %v", trial, got, want)
		}
	}
}
