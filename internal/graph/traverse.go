package graph

// This file contains traversal utilities: BFS/DFS, single-source
// reachability, undirected connected components (used by the Appendix B
// partitioning optimisation) and simple path queries (used to verify
// p-hom mappings, whose edge-to-path condition requires a nonempty path
// between matched endpoints).

// BFS visits nodes reachable from start in breadth-first order, invoking
// visit for each (including start). Traversal stops early if visit returns
// false.
func (g *Graph) BFS(start NodeID, visit func(v NodeID) bool) {
	g.check(start)
	g.Finish()
	seen := make([]bool, len(g.nodes))
	queue := make([]NodeID, 0, 16)
	queue = append(queue, start)
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !visit(v) {
			return
		}
		for _, u := range g.post[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
}

// DFS visits nodes reachable from start in depth-first preorder, invoking
// visit for each. Traversal stops early if visit returns false. The
// implementation is iterative so deep graphs cannot overflow the stack.
func (g *Graph) DFS(start NodeID, visit func(v NodeID) bool) {
	g.check(start)
	g.Finish()
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !visit(v) {
			return
		}
		// Push children in reverse so traversal order matches recursion.
		row := g.post[v]
		for i := len(row) - 1; i >= 0; i-- {
			if u := row[i]; !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
}

// ReachableFrom returns the set of nodes reachable from start, including
// start itself, as a boolean slice indexed by NodeID.
func (g *Graph) ReachableFrom(start NodeID) []bool {
	reach := make([]bool, g.NumNodes())
	g.BFS(start, func(v NodeID) bool {
		reach[v] = true
		return true
	})
	return reach
}

// HasPath reports whether a nonempty path from u to v exists — the exact
// condition a p-hom mapping imposes on matched edge endpoints (Section 3.2:
// "there exists a nonempty path"). A self-loop or longer cycle through u is
// required for HasPath(u, u) to hold; the trivial empty path does not count.
func (g *Graph) HasPath(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	g.Finish()
	// BFS from the successors of u so the empty path is excluded.
	seen := make([]bool, len(g.nodes))
	queue := make([]NodeID, 0, len(g.post[u]))
	for _, w := range g.post[u] {
		if w == v {
			return true
		}
		if !seen[w] {
			seen[w] = true
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.post[x] {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// ShortestPath returns one shortest nonempty path from u to v as a node
// sequence starting at u and ending at v, or nil if none exists. Used by
// tooling to display the witness path behind an edge-to-path match. A
// nonempty path from u to itself (through a self-loop or a longer cycle) is
// returned as [u, ..., u].
func (g *Graph) ShortestPath(u, v NodeID) []NodeID {
	g.check(u)
	g.check(v)
	g.Finish()
	n := len(g.nodes)
	parent := make([]NodeID, n)
	seen := make([]bool, n)
	queue := make([]NodeID, 0, 16)
	// Seed from u's successors so that the empty path is excluded.
	for _, w := range g.post[u] {
		if !seen[w] {
			seen[w] = true
			parent[w] = u
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 && !seen[v] {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.post[x] {
			if !seen[w] {
				seen[w] = true
				parent[w] = x
				queue = append(queue, w)
			}
		}
	}
	if !seen[v] {
		return nil
	}
	// Walk parents back from v; the walk ends at a node whose parent is u
	// because the BFS was seeded from u's successors.
	rev := []NodeID{v}
	for at := v; ; {
		p := parent[at]
		rev = append(rev, p)
		if p == u {
			break
		}
		at = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ConnectedComponents treats the graph as undirected and returns the node
// sets of its connected components, each sorted by ID. The Appendix B
// partitioning optimisation relies on this: after unmatchable nodes are
// removed, each remaining component can be matched independently
// (Proposition 1).
func (g *Graph) ConnectedComponents() [][]NodeID {
	g.Finish()
	n := len(g.nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]NodeID
	var stack []NodeID
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		var members []NodeID
		stack = append(stack[:0], NodeID(s))
		comp[s] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, u := range g.post[v] {
				if comp[u] == -1 {
					comp[u] = id
					stack = append(stack, u)
				}
			}
			for _, u := range g.prev[v] {
				if comp[u] == -1 {
					comp[u] = id
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, dedupSorted(members))
	}
	return comps
}

// IsDAG reports whether the graph has no directed cycle (self-loops count
// as cycles). The paper's hardness results hold already for DAGs, and tests
// use this to validate generated reduction instances.
func (g *Graph) IsDAG() bool {
	g.Finish()
	n := len(g.nodes)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.prev[v])
	}
	queue := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	visited := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		visited++
		for _, u := range g.post[v] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	return visited == n
}

// TopoSort returns a topological order of the nodes, or nil if the graph is
// cyclic.
func (g *Graph) TopoSort() []NodeID {
	g.Finish()
	n := len(g.nodes)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.prev[v])
	}
	queue := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range g.post[v] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != n {
		return nil
	}
	return order
}
