package repl

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/store"
)

func testGraph(seed int) *graph.Graph {
	rng := rand.New(rand.NewSource(int64(seed)))
	n := 3 + rng.Intn(5)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNodeFull(graph.Node{
			Label:   fmt.Sprintf("L%d", rng.Intn(4)),
			Weight:  1,
			Content: fmt.Sprintf("node %d of graph %d", i, seed),
		})
	}
	for i := 0; i < n*2; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func TestBackoffSchedule(t *testing.T) {
	b := newBackoff(100*time.Millisecond, time.Second)
	b.jitter = func() float64 { return 1 } // deterministic
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := b.next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.reset()
	if got := b.next(); got != 100*time.Millisecond {
		t.Fatalf("after reset: %v, want 100ms", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := newBackoff(100*time.Millisecond, time.Second)
	for i := 0; i < 100; i++ {
		b.reset()
		d := b.next()
		if d < 50*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("jittered first delay %v outside [50ms, 150ms)", d)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	op := store.Op{Seq: 7, Kind: store.OpRegister, Name: "g", Graph: testGraph(1)}
	payload, err := store.EncodeOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameOp, payload); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameCheckpoint, u64Body(42)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameReset, resetBody(9, 3)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameGraph, store.EncodeNamedGraph("g", op.Graph)); err != nil {
		t.Fatal(err)
	}

	kind, body, err := readFrame(&buf)
	if err != nil || kind != frameOp {
		t.Fatalf("frame 1: kind %d err %v", kind, err)
	}
	got, err := store.DecodeOp(body)
	if err != nil || got.Seq != 7 || got.Name != "g" {
		t.Fatalf("op round trip: %+v err %v", got, err)
	}
	kind, body, err = readFrame(&buf)
	if err != nil || kind != frameCheckpoint {
		t.Fatalf("frame 2: kind %d err %v", kind, err)
	}
	if seq, err := parseU64(body); err != nil || seq != 42 {
		t.Fatalf("checkpoint round trip: %d err %v", seq, err)
	}
	kind, body, err = readFrame(&buf)
	if err != nil || kind != frameReset {
		t.Fatalf("frame 3: kind %d err %v", kind, err)
	}
	if base, count, err := parseReset(body); err != nil || base != 9 || count != 3 {
		t.Fatalf("reset round trip: base %d count %d err %v", base, count, err)
	}
	kind, body, err = readFrame(&buf)
	if err != nil || kind != frameGraph {
		t.Fatalf("frame 4: kind %d err %v", kind, err)
	}
	if name, g, err := store.DecodeNamedGraph(body); err != nil || name != "g" || g.NumNodes() != op.Graph.NumNodes() {
		t.Fatalf("graph round trip: %q err %v", name, err)
	}
}

// memCatalog stands in for the engine's catalog on both sides of the
// unit tests: a locked name→graph map whose mutations append to the
// store under the same lock, mirroring the persister's ordering
// contract.
type memCatalog struct {
	mu     sync.Mutex
	st     *store.Store
	graphs map[string]*graph.Graph
}

func newMemCatalog(st *store.Store) *memCatalog {
	return &memCatalog{st: st, graphs: make(map[string]*graph.Graph)}
}

// mutate logs the op to the WAL (primary side) and applies it.
func (m *memCatalog) mutate(t *testing.T, op store.Op) uint64 {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	seq, err := m.st.Append(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.applyLocked(op); err != nil {
		t.Fatal(err)
	}
	return seq
}

// apply is the follower-side Config.Apply callback: persist the op to
// the local WAL at the primary's seq, then commit it to the map, both
// under one lock hold (the engine does the same under its snapshot
// mutex). A map-level rejection wraps ErrStateMismatch so the
// follower resyncs.
func (m *memCatalog) apply(op store.Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.st.AppendAt(op); err != nil {
		return err
	}
	if err := m.applyLocked(op); err != nil {
		return fmt.Errorf("%w: %v", ErrStateMismatch, err)
	}
	return nil
}

func (m *memCatalog) applyLocked(op store.Op) error {
	switch op.Kind {
	case store.OpRegister:
		if _, dup := m.graphs[op.Name]; dup {
			return fmt.Errorf("duplicate %q", op.Name)
		}
		m.graphs[op.Name] = op.Graph
	case store.OpRemove:
		if _, ok := m.graphs[op.Name]; !ok {
			return fmt.Errorf("unknown %q", op.Name)
		}
		delete(m.graphs, op.Name)
	case store.OpPatch:
		g, ok := m.graphs[op.Name]
		if !ok {
			return fmt.Errorf("unknown %q", op.Name)
		}
		ng, err := g.ApplyPatch(op.Patch)
		if err != nil {
			return err
		}
		m.graphs[op.Name] = ng
	}
	return nil
}

// reset is the follower-side bootstrap callback.
func (m *memCatalog) reset(state map[string]*graph.Graph, seq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.st.ReplaceWithSnapshot(state, seq); err != nil {
		return err
	}
	m.graphs = make(map[string]*graph.Graph, len(state))
	for n, g := range state {
		m.graphs[n] = g
	}
	return nil
}

func (m *memCatalog) export(prepare func()) map[string]*graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	prepare()
	out := make(map[string]*graph.Graph, len(m.graphs))
	for n, g := range m.graphs {
		out[n] = g
	}
	return out
}

// contentSets summarises a catalog for equality checks: name → node
// count + edge count + first node content.
func (m *memCatalog) summary() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.graphs))
	for n, g := range m.graphs {
		c := ""
		if g.NumNodes() > 0 {
			c = g.Node(0).Content
		}
		out[n] = fmt.Sprintf("%d/%d/%s", g.NumNodes(), g.NumEdges(), c)
	}
	return out
}

// primary bundles one primary side.
type primary struct {
	st  *store.Store
	cat *memCatalog
	srv *httptest.Server
}

func newPrimary(t *testing.T, opts HandlerOptions) *primary {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat := newMemCatalog(st)
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replicate/since/{seq}", NewHandler(&Source{Store: st, Export: cat.export}, opts))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &primary{st: st, cat: cat, srv: srv}
}

// newFollower builds a follower over a fresh store and memCatalog.
func newFollower(t *testing.T, primaryURL string, client *http.Client) (*Follower, *memCatalog) {
	t.Helper()
	f, cat, _ := reopenFollower(t, primaryURL, client, t.TempDir())
	return f, cat
}

func reopenFollower(t *testing.T, primaryURL string, client *http.Client, dir string) (*Follower, *memCatalog, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat := newMemCatalog(st)
	// A restart replays the local WAL, like engine.Open does.
	state, _, err := st.FoldState()
	if err != nil {
		t.Fatal(err)
	}
	for n, g := range state {
		cat.graphs[n] = g
	}
	f, err := New(Config{
		Primary:      primaryURL,
		Client:       client,
		Store:        st,
		Apply:        cat.apply,
		Reset:        cat.reset,
		MinBackoff:   5 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		StallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, cat, st
}

// waitConverged polls until the follower matches the primary's state
// and head seq.
func waitConverged(t *testing.T, p *primary, f *Follower, cat *memCatalog) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := f.Stats()
		if st.LastApplied == p.st.Stats().LastSeq && reflect.DeepEqual(p.cat.summary(), cat.summary()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged: follower %+v primary seq %d\nprimary %v\nfollower %v",
		f.Stats(), p.st.Stats().LastSeq, p.cat.summary(), cat.summary())
}

func fastOpts() HandlerOptions {
	return HandlerOptions{Poll: 2 * time.Millisecond, CheckpointEvery: 20 * time.Millisecond, BatchRecords: 16}
}

func TestReplicationEndToEnd(t *testing.T) {
	p := newPrimary(t, fastOpts())
	for i := 0; i < 5; i++ {
		p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: fmt.Sprintf("g%d", i), Graph: testGraph(i)})
	}
	f, cat := newFollower(t, p.srv.URL, nil)
	f.Start()
	defer f.Stop()
	waitConverged(t, p, f, cat)

	// Live tail: mutations arrive while connected.
	p.cat.mutate(t, store.Op{Kind: store.OpRemove, Name: "g0"})
	p.cat.mutate(t, store.Op{Kind: store.OpPatch, Name: "g1", Patch: &graph.Patch{
		SetContent: []graph.ContentUpdate{{Node: 0, Content: "patched"}},
	}})
	waitConverged(t, p, f, cat)

	st := f.Stats()
	if !st.SyncedOnce || st.Diverged {
		t.Fatalf("converged follower stats: %+v", st)
	}
	if st.LagSeq != 0 {
		t.Fatalf("converged follower lag %d", st.LagSeq)
	}
}

func TestFollowerRestartResumesFromLocalTail(t *testing.T) {
	p := newPrimary(t, fastOpts())
	for i := 0; i < 4; i++ {
		p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: fmt.Sprintf("g%d", i), Graph: testGraph(i)})
	}
	dir := t.TempDir()
	f1, cat1, st1 := reopenFollower(t, p.srv.URL, nil, dir)
	f1.Start()
	waitConverged(t, p, f1, cat1)
	f1.Stop()
	st1.Close()

	// Primary advances while the follower is down.
	p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: "late", Graph: testGraph(99)})

	f2, cat2, _ := reopenFollower(t, p.srv.URL, nil, dir)
	if got := f2.Stats().LastApplied; got != 4 {
		t.Fatalf("restarted follower resumes at %d, want the local durable tail 4", got)
	}
	f2.Start()
	defer f2.Stop()
	waitConverged(t, p, f2, cat2)
	if f2.Stats().Resyncs != 0 {
		t.Fatalf("resume from local tail should not bootstrap, got %d resyncs", f2.Stats().Resyncs)
	}
}

// TestBootstrapBehindSnapshotHorizon: a follower whose position
// precedes the primary's compacted history gets a full bootstrap.
func TestBootstrapBehindSnapshotHorizon(t *testing.T) {
	p := newPrimary(t, fastOpts())
	state := make(map[string]*graph.Graph)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("g%d", i)
		g := testGraph(i)
		p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: name, Graph: g})
		state[name] = g
	}
	lastSeq, sealed, err := p.st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.st.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: "post", Graph: testGraph(50)})

	f, cat := newFollower(t, p.srv.URL, nil)
	f.Start()
	defer f.Stop()
	waitConverged(t, p, f, cat)
	if st := f.Stats(); st.Resyncs != 1 {
		t.Fatalf("bootstrap count = %d, want 1 (stats %+v)", st.Resyncs, st)
	}
}

// TestDivergedFollowerResyncs: a follower claiming a seq the primary
// never reached gets 409, marks itself diverged, and self-heals with
// an explicit resync.
func TestDivergedFollowerResyncs(t *testing.T) {
	p := newPrimary(t, fastOpts())
	p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: "real", Graph: testGraph(1)})

	dir := t.TempDir()
	phantom, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The follower durably applied ops the primary has no memory of.
	for seq := uint64(1); seq <= 5; seq++ {
		if err := phantom.AppendAt(store.Op{Seq: seq, Kind: store.OpRegister, Name: fmt.Sprintf("ph%d", seq), Graph: testGraph(int(seq))}); err != nil {
			t.Fatal(err)
		}
	}
	phantom.Close()

	f, cat, _ := reopenFollower(t, p.srv.URL, nil, dir)
	f.Start()
	defer f.Stop()
	waitConverged(t, p, f, cat)
	st := f.Stats()
	if st.Resyncs < 1 {
		t.Fatalf("diverged follower healed without a resync: %+v", st)
	}
	if st.Diverged {
		t.Fatalf("resynced follower still marked diverged: %+v", st)
	}
}

// TestFaultInjection runs the follower through every transport fault
// while the primary keeps mutating, and requires convergence.
func TestFaultInjection(t *testing.T) {
	p := newPrimary(t, fastOpts())
	for i := 0; i < 6; i++ {
		p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: fmt.Sprintf("seed%d", i), Graph: testGraph(i)})
	}

	// A deterministic rotation of faults for the first connections,
	// then a healthy link.
	faults := []Fault{
		{Refuse: true},
		{CutAfter: 40},
		{CorruptAt: 33},
		{StallAfter: 60},
		{CutAfter: 200},
		{CorruptAt: 150},
	}
	ft := &FaultTransport{Plan: func(conn int) Fault {
		if conn < len(faults) {
			return faults[conn]
		}
		return Fault{}
	}}
	f, cat := newFollower(t, p.srv.URL, &http.Client{Transport: ft})
	f.Start()
	defer f.Stop()

	// Mutation storm while the faults fire.
	for i := 0; i < 30; i++ {
		p.cat.mutate(t, store.Op{Kind: store.OpRegister, Name: fmt.Sprintf("storm%d", i), Graph: testGraph(100 + i)})
		time.Sleep(time.Millisecond)
	}
	waitConverged(t, p, f, cat)
	if ft.Connections() <= len(faults) {
		t.Fatalf("converged in %d connections — the faults never fired", ft.Connections())
	}
	if st := f.Stats(); st.Reconnects < uint64(len(faults)) {
		t.Fatalf("reconnects = %d, want ≥ %d", st.Reconnects, len(faults))
	}
}
