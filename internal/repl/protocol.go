// Package repl is WAL-shipping replication: a primary phomd streams
// its write-ahead log over GET /v1/replicate/since/{seq}, and a
// follower applies the records through the ordinary catalog commit
// path — closures and the search index stay coherent because the ops
// take exactly the route a local mutation would — while persisting
// them to its own WAL so a restart resumes from the local tail.
//
// The wire protocol reuses the store's record framing (uint32 length,
// payload, CRC-32C), so every frame carries its own checksum and a
// truncated or corrupted stream is detected at the frame that
// suffered it. Each frame's payload leads with a kind byte:
//
//	op          one WAL record, payload shipped verbatim off disk
//	checkpoint  the primary's current last-acked seq; also the idle
//	            keepalive, so a silent stream means a dead one
//	reset       a bootstrap follows: base seq + graph count, then that
//	            many graph frames carrying the primary's full state
//	graph       one (name, graph) pair of a bootstrap
//
// A follower asks to resume from its last durably applied seq. The
// primary tails its WAL from there — or, when the position precedes
// its snapshot horizon (or the follower explicitly asks after
// detecting divergence), streams a reset first. Op seqs are validated
// strictly contiguous on the follower; any violation marks the
// follower diverged and forces a resync, never a silent gap.
package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"graphmatch/internal/store"
)

// Frame kinds (the first payload byte).
const (
	frameOp         byte = 1
	frameCheckpoint byte = 2
	frameReset      byte = 3
	frameGraph      byte = 4
)

// writeFrame sends one kind-tagged frame as a store record.
func writeFrame(w io.Writer, kind byte, body []byte) error {
	buf := make([]byte, 0, len(body)+1)
	buf = append(buf, kind)
	buf = append(buf, body...)
	return store.WriteFramed(w, buf)
}

// readFrame reads one frame, splitting off the kind byte. Framing and
// checksum errors surface exactly as the store's reader reports them
// (io.EOF clean end, io.ErrUnexpectedEOF torn, store.IsCorrupt on a
// checksum mismatch).
func readFrame(r io.Reader) (kind byte, body []byte, err error) {
	payload, err := store.ReadFramed(r)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("repl: empty frame")
	}
	return payload[0], payload[1:], nil
}

// u64Body encodes a checkpoint body.
func u64Body(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// parseU64 decodes a checkpoint body.
func parseU64(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("repl: checkpoint body of %d bytes", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// resetBody encodes a reset header: the seq the bootstrap state is
// exact at, and how many graph frames follow.
func resetBody(base uint64, count int) []byte {
	b := make([]byte, 8, 8+binary.MaxVarintLen64)
	binary.LittleEndian.PutUint64(b, base)
	return binary.AppendUvarint(b, uint64(count))
}

// parseReset decodes a reset header.
func parseReset(body []byte) (base uint64, count int, err error) {
	if len(body) < 8 {
		return 0, 0, fmt.Errorf("repl: reset body of %d bytes", len(body))
	}
	base = binary.LittleEndian.Uint64(body)
	v, n := binary.Uvarint(body[8:])
	if n <= 0 || n != len(body)-8 {
		return 0, 0, fmt.Errorf("repl: malformed reset count")
	}
	return base, int(v), nil
}
