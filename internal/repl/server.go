package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/store"
)

// Source is the primary side's view of the serving engine: the store
// whose WAL is shipped and the catalog export that backs bootstraps.
type Source struct {
	Store *store.Store
	// Export returns the full catalog under its lock; prepare runs
	// while the lock is held, exactly like catalog.Export, so a
	// bootstrap captures the store seq the state corresponds to (the
	// persister appends under the same lock — no mutation can land
	// between reading the seq and copying the state).
	Export func(prepare func()) map[string]*graph.Graph
}

// HandlerOptions tune the stream; zero values take the defaults.
type HandlerOptions struct {
	// Poll is the idle sleep between WAL reads once caught up.
	Poll time.Duration
	// CheckpointEvery bounds the keepalive interval: a caught-up
	// stream still emits a checkpoint this often, so the follower's
	// stall detector can tell a quiet primary from a dead link.
	CheckpointEvery time.Duration
	// BatchRecords caps records read (and frames written) per WAL
	// visit.
	BatchRecords int
}

func (o *HandlerOptions) defaults() {
	if o.Poll <= 0 {
		o.Poll = 50 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = time.Second
	}
	if o.BatchRecords <= 0 {
		o.BatchRecords = 256
	}
}

// NewHandler serves GET /v1/replicate/since/{seq}: an unbounded
// chunked stream of frames shipping every WAL record past {seq}, then
// following the log live until the client disconnects. A {seq} ahead
// of the primary's log is a diverged follower and answers 409; a
// {seq} behind the snapshot horizon (or an explicit ?resync=1) gets a
// bootstrap — the full catalog at an exact seq — before tailing.
func NewHandler(src *Source, opts HandlerOptions) http.Handler {
	opts.defaults()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad seq: %v", err))
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			httpError(w, http.StatusInternalServerError, "response writer cannot stream")
			return
		}
		st := src.Store.Stats()
		resync := r.URL.Query().Get("resync") == "1"
		if from > st.LastSeq && !resync {
			// The follower claims a position this log never reached: it
			// applied records the primary has no memory of (a rolled-back
			// primary, or cross-wired stores). Only a full resync fixes it
			// — which is exactly what the 409 tells the follower to
			// request, so a resync=1 retry must not bounce off this check.
			httpError(w, http.StatusConflict, fmt.Sprintf(
				"follower at seq %d is ahead of primary at seq %d: diverged, resync required", from, st.LastSeq))
			return
		}

		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)

		if resync || from < st.SnapshotSeq {
			var err error
			if from, err = streamBootstrap(w, src); err != nil {
				return
			}
			flusher.Flush()
		}

		ctx := r.Context()
		lastCheckpoint := time.Time{} // force one immediately: it tells the follower the head
		for ctx.Err() == nil {
			recs, err := src.Store.ReadSince(from, opts.BatchRecords)
			if err != nil {
				// A concurrent compaction moved the horizon past this
				// stream's position (TruncatedHistoryError), or the store
				// closed. End the stream; the reconnecting follower will be
				// offered a bootstrap.
				return
			}
			for _, rec := range recs {
				if err := writeFrame(w, frameOp, rec.Payload); err != nil {
					return
				}
				from = rec.Seq
			}
			if len(recs) > 0 || time.Since(lastCheckpoint) >= opts.CheckpointEvery {
				if err := writeFrame(w, frameCheckpoint, u64Body(src.Store.Stats().LastSeq)); err != nil {
					return
				}
				flusher.Flush()
				lastCheckpoint = time.Now()
			}
			if len(recs) > 0 {
				continue // not caught up; read again immediately
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(opts.Poll):
			}
		}
	})
}

// streamBootstrap exports the catalog at an exact seq and streams it
// as a reset frame followed by one graph frame per entry. It returns
// the seq the tail should continue from.
func streamBootstrap(w http.ResponseWriter, src *Source) (uint64, error) {
	var base uint64
	state := src.Export(func() { base = src.Store.Stats().LastSeq })
	names := make([]string, 0, len(state))
	for n := range state {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := writeFrame(w, frameReset, resetBody(base, len(names))); err != nil {
		return 0, err
	}
	for _, name := range names {
		if err := writeFrame(w, frameGraph, store.EncodeNamedGraph(name, state[name])); err != nil {
			return 0, err
		}
	}
	return base, nil
}

// httpError writes the same {"error": ...} JSON shape the rest of the
// HTTP API uses.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// IsDivergence reports whether a stream error is the primary's 409 —
// the follower is ahead of the primary's log and must resync.
func IsDivergence(err error) bool { return errors.Is(err, errDiverged) }
