package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/store"
)

// errDiverged tags the states only a full resync repairs: the primary
// answered 409 (we are ahead of its log), a streamed op broke seq
// contiguity, or the catalog rejected an op the primary committed.
var errDiverged = errors.New("repl: follower diverged from primary")

// ErrStateMismatch is how a Config.Apply implementation reports that
// the local catalog rejected an op the primary committed (duplicate
// name, unknown graph, invalid patch against the local copy): local
// state the primary's log cannot reproduce, repairable only by a
// resync. Apply errors wrapping it trigger one; any other Apply error
// is treated as transient (disk, shutdown) and retried from the same
// position.
var ErrStateMismatch = errors.New("repl: local state cannot accept a primary-committed op")

// Config wires a Follower to its primary and its local state.
type Config struct {
	// Primary is the primary's base URL, e.g. http://primary:8080.
	Primary string
	// Client issues the streaming GETs. Leave the default transport's
	// Timeout zero — streams are unbounded; the stall detector handles
	// dead links. Tests inject a FaultTransport here.
	Client *http.Client
	// Store is the follower's own WAL; its durable tail (Stats().LastSeq)
	// is where a restarted follower resumes. The Follower itself never
	// writes it — persistence belongs to Apply, below.
	Store *store.Store
	// Apply lands one primary-committed op: persist it to the local WAL
	// (store.AppendAt, fsynced, at the primary's seq) and commit it
	// through the ordinary catalog path — both under whatever lock keeps
	// a concurrent local snapshot from capturing the append without the
	// commit. A catalog rejection must be reported by wrapping
	// ErrStateMismatch (the resync trigger); any other error is retried
	// from the same position.
	Apply func(store.Op) error
	// Reset replaces the entire local state with a bootstrap: wipe the
	// catalog, register every graph, and land the store on a snapshot
	// at seq (store.ReplaceWithSnapshot).
	Reset func(state map[string]*graph.Graph, seq uint64) error

	// MinBackoff/MaxBackoff bound the reconnect schedule (defaults
	// 100ms and 5s); jitter of ±50% is applied on top.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// StallTimeout aborts a stream that delivers no frame for this
	// long (default 15s). The primary checkpoints at least every
	// CheckpointEvery even when idle, so a healthy link is never
	// silent.
	StallTimeout time.Duration
}

// Stats is the follower's replication state, served under /v1/stats
// and exported on /metrics.
type Stats struct {
	Primary       string  `json:"primary"`
	LastApplied   uint64  `json:"last_applied_seq"`
	PrimarySeq    uint64  `json:"primary_seq"`
	LagSeq        uint64  `json:"lag_seq"`
	SecondsBehind float64 `json:"seconds_behind"`
	Connected     bool    `json:"connected"`
	// SyncedOnce flips when the follower first catches up to the
	// primary's head — the readiness gate's precondition.
	SyncedOnce bool `json:"synced_once"`
	// Diverged is set between detecting an unrecoverable position and
	// completing the resync that repairs it.
	Diverged   bool   `json:"diverged"`
	Reconnects uint64 `json:"reconnects"`
	Resyncs    uint64 `json:"resyncs"`
	Applied    uint64 `json:"applied"`
	LastError  string `json:"last_error,omitempty"`
}

// Follower tails a primary. Start launches the loop; Stop halts it
// and waits. All state is behind mu and readable via Stats.
type Follower struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu          sync.Mutex
	lastApplied uint64
	primarySeq  uint64
	connected   bool
	syncedOnce  bool
	diverged    bool
	reconnects  uint64
	resyncs     uint64
	applied     uint64
	lastErr     string
	// syncedAt is the last instant the follower was provably at the
	// primary's head; SecondsBehind measures from it while behind.
	syncedAt time.Time
}

// New validates cfg and prepares a follower resuming from the local
// store's durable tail. Call Start to begin.
func New(cfg Config) (*Follower, error) {
	if cfg.Primary == "" || cfg.Store == nil || cfg.Apply == nil || cfg.Reset == nil {
		return nil, fmt.Errorf("repl: Config needs Primary, Store, Apply, and Reset")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = 5 * time.Second
		if cfg.MaxBackoff < cfg.MinBackoff {
			cfg.MaxBackoff = cfg.MinBackoff
		}
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 15 * time.Second
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		cfg:         cfg,
		ctx:         ctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		lastApplied: cfg.Store.Stats().LastSeq,
		syncedAt:    time.Now(),
	}, nil
}

// Start launches the tail loop.
func (f *Follower) Start() { go f.run() }

// Stop halts the loop — aborting any in-flight stream — and waits for
// it to exit.
func (f *Follower) Stop() {
	f.cancel()
	<-f.done
}

// Stats snapshots the replication state.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{
		Primary:     f.cfg.Primary,
		LastApplied: f.lastApplied,
		PrimarySeq:  f.primarySeq,
		Connected:   f.connected,
		SyncedOnce:  f.syncedOnce,
		Diverged:    f.diverged,
		Reconnects:  f.reconnects,
		Resyncs:     f.resyncs,
		Applied:     f.applied,
		LastError:   f.lastErr,
	}
	if f.primarySeq > f.lastApplied {
		st.LagSeq = f.primarySeq - f.lastApplied
	}
	if st.LagSeq > 0 || !f.connected {
		st.SecondsBehind = time.Since(f.syncedAt).Seconds()
	}
	return st
}

// run is the reconnect loop: stream until the link breaks, note why,
// back off (with jitter, reset on progress), repeat. A divergence
// forces the next connect to request a resync.
func (f *Follower) run() {
	defer close(f.done)
	bo := newBackoff(f.cfg.MinBackoff, f.cfg.MaxBackoff)
	resync := false
	for {
		progress, err := f.stream(resync)
		if f.ctx.Err() != nil {
			return
		}
		resync = errors.Is(err, errDiverged)
		f.noteDisconnect(err)
		if progress {
			bo.reset()
		}
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(bo.next()):
		}
	}
}

// stream opens one replication connection and consumes it until an
// error. progress reports whether at least one valid frame arrived —
// the backoff reset condition.
func (f *Follower) stream(resync bool) (progress bool, err error) {
	ctx, cancel := context.WithCancel(f.ctx)
	defer cancel()

	url := fmt.Sprintf("%s/v1/replicate/since/%d", f.cfg.Primary, f.lastAppliedNow())
	if resync {
		url += "?resync=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		f.markDiverged()
		return false, fmt.Errorf("%w (primary rejected seq %d)", errDiverged, f.lastAppliedNow())
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("repl: primary answered %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	f.setConnected(true)
	defer f.setConnected(false)

	// The stall detector: any frame rearms it; silence for StallTimeout
	// cancels the request, failing the pending read.
	watchdog := time.AfterFunc(f.cfg.StallTimeout, cancel)
	defer watchdog.Stop()

	br := bufio.NewReader(resp.Body)
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			if ctx.Err() != nil && f.ctx.Err() == nil {
				err = fmt.Errorf("repl: stream stalled past %v", f.cfg.StallTimeout)
			}
			return progress, err
		}
		watchdog.Reset(f.cfg.StallTimeout)
		progress = true
		switch kind {
		case frameOp:
			op, err := store.DecodeOp(body)
			if err != nil {
				return progress, fmt.Errorf("repl: op frame: %w", err)
			}
			if err := f.applyOp(op); err != nil {
				return progress, err
			}
		case frameCheckpoint:
			seq, err := parseU64(body)
			if err != nil {
				return progress, err
			}
			f.noteCheckpoint(seq)
		case frameReset:
			if err := f.consumeBootstrap(br, body, watchdog); err != nil {
				return progress, err
			}
		default:
			return progress, fmt.Errorf("repl: unknown frame kind %d", kind)
		}
	}
}

// applyOp lands one streamed op through cfg.Apply (persist + commit).
// Seq contiguity is strict — the primary's log assigns consecutive
// numbers, so any gap or repeat means the stream (or our position) is
// wrong in a way only a resync repairs; so does a state mismatch the
// callback reports.
func (f *Follower) applyOp(op store.Op) error {
	last := f.lastAppliedNow()
	if op.Seq != last+1 {
		f.markDiverged()
		return fmt.Errorf("%w: op seq %d after %d", errDiverged, op.Seq, last)
	}
	if err := f.cfg.Apply(op); err != nil {
		if errors.Is(err, ErrStateMismatch) {
			// The primary committed this op; a catalog that rejects it
			// holds state the primary's log cannot reproduce. Resync.
			f.markDiverged()
			return fmt.Errorf("%w: applying op %d: %v", errDiverged, op.Seq, err)
		}
		return fmt.Errorf("repl: applying op %d: %w", op.Seq, err)
	}
	f.noteApplied(op.Seq)
	return nil
}

// consumeBootstrap reads the graph frames a reset announced and swaps
// them in as the entire local state.
func (f *Follower) consumeBootstrap(br *bufio.Reader, header []byte, watchdog *time.Timer) error {
	base, count, err := parseReset(header)
	if err != nil {
		return err
	}
	state := make(map[string]*graph.Graph, count)
	for i := 0; i < count; i++ {
		kind, body, err := readFrame(br)
		if err != nil {
			return fmt.Errorf("repl: bootstrap graph %d/%d: %w", i+1, count, err)
		}
		watchdog.Reset(f.cfg.StallTimeout)
		if kind != frameGraph {
			return fmt.Errorf("repl: frame kind %d inside bootstrap", kind)
		}
		name, g, err := store.DecodeNamedGraph(body)
		if err != nil {
			return fmt.Errorf("repl: bootstrap graph %d/%d: %w", i+1, count, err)
		}
		state[name] = g
	}
	if err := f.cfg.Reset(state, base); err != nil {
		return fmt.Errorf("repl: resetting to bootstrap at seq %d: %w", base, err)
	}
	f.noteReset(base)
	return nil
}

func (f *Follower) lastAppliedNow() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastApplied
}

func (f *Follower) setConnected(v bool) {
	f.mu.Lock()
	f.connected = v
	f.mu.Unlock()
}

func (f *Follower) markDiverged() {
	f.mu.Lock()
	f.diverged = true
	f.mu.Unlock()
}

func (f *Follower) noteApplied(seq uint64) {
	f.mu.Lock()
	f.lastApplied = seq
	f.applied++
	if f.lastApplied >= f.primarySeq {
		f.syncedAt = time.Now()
		f.syncedOnce = true
	}
	f.mu.Unlock()
}

func (f *Follower) noteCheckpoint(primarySeq uint64) {
	f.mu.Lock()
	if primarySeq > f.primarySeq {
		f.primarySeq = primarySeq
	}
	if f.lastApplied >= f.primarySeq {
		f.syncedAt = time.Now()
		f.syncedOnce = true
	}
	f.mu.Unlock()
}

func (f *Follower) noteReset(base uint64) {
	f.mu.Lock()
	f.lastApplied = base
	if base > f.primarySeq {
		f.primarySeq = base
	}
	f.resyncs++
	f.diverged = false
	if f.lastApplied >= f.primarySeq {
		f.syncedAt = time.Now()
		f.syncedOnce = true
	}
	f.mu.Unlock()
}

// noteDisconnect records why a stream ended and counts the reconnect
// the loop is about to attempt.
func (f *Follower) noteDisconnect(err error) {
	f.mu.Lock()
	f.reconnects++
	if err != nil && err != io.EOF {
		f.lastErr = err.Error()
	}
	f.mu.Unlock()
}
