package repl

import (
	"math/rand"
	"time"
)

// backoff is the follower's reconnect pacing: exponential doubling
// from min to a cap at max, with ±50% jitter so a fleet of followers
// orphaned by the same primary restart does not reconnect in
// lockstep. A stream that makes progress resets it.
type backoff struct {
	min, max time.Duration
	cur      time.Duration
	// jitter returns a factor in [0.5, 1.5); swapped in tests for
	// determinism.
	jitter func() float64
}

func newBackoff(min, max time.Duration) *backoff {
	return &backoff{min: min, max: max, jitter: func() float64 { return 0.5 + rand.Float64() }}
}

// next returns the delay before the next reconnect attempt, advancing
// the exponential state.
func (b *backoff) next() time.Duration {
	if b.cur == 0 {
		b.cur = b.min
	} else {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	return time.Duration(float64(b.cur) * b.jitter())
}

// reset restarts the schedule from min — called after a stream
// delivers at least one valid frame.
func (b *backoff) reset() { b.cur = 0 }
