package repl

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// The fault-injection harness. FaultTransport wraps an http.Transport
// and sabotages replication streams deterministically — refuse the
// connection, cut the body mid-record, flip bytes so checksums fail,
// or stall the stream silently — so tests can prove the follower's
// recovery machinery (CRC validation, seq contiguity, backoff, stall
// detection, resync) against every failure the wire can produce. It
// lives in the package proper, not a _test file, because the engine's
// fault quickcheck and cmd/benchrepl both inject it.

// Fault sabotages one connection. The zero value is a healthy link.
type Fault struct {
	// Refuse fails the round trip outright, like a connection refused.
	Refuse bool
	// CutAfter closes the stream after n body bytes (0 = never): a
	// torn record mid-flight.
	CutAfter int64
	// CorruptAt XOR-flips the byte at offset n-1 (0 = off): framing
	// survives, the CRC does not.
	CorruptAt int64
	// StallAfter stops returning data after n bytes without closing
	// (0 = off): a hung-but-open TCP link only a stall detector
	// catches.
	StallAfter int64
}

// FaultTransport injects Plan(conn)'s fault into each successive
// connection (conn counts from 0). Safe for concurrent use.
type FaultTransport struct {
	// Base performs the real round trip; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Plan chooses the fault for the nth connection.
	Plan func(conn int) Fault

	mu   sync.Mutex
	conn int
}

// Connections reports how many round trips were attempted.
func (t *FaultTransport) Connections() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conn
}

func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	n := t.conn
	t.conn++
	t.mu.Unlock()
	var fault Fault
	if t.Plan != nil {
		fault = t.Plan(n)
	}
	if fault.Refuse {
		return nil, fmt.Errorf("repl: injected connection refused (conn %d)", n)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if fault == (Fault{}) {
		return resp, nil
	}
	resp.Body = &faultBody{rc: resp.Body, fault: fault, ctx: req.Context(), closed: make(chan struct{})}
	return resp, nil
}

// faultBody applies a Fault to a response body byte stream.
type faultBody struct {
	rc    io.ReadCloser
	fault Fault
	ctx   context.Context
	off   int64

	mu     sync.Mutex
	closed chan struct{}
	done   bool
}

func (b *faultBody) Read(p []byte) (int, error) {
	f := b.fault
	if f.CutAfter > 0 && b.off >= f.CutAfter {
		return 0, io.ErrUnexpectedEOF
	}
	if f.StallAfter > 0 && b.off >= f.StallAfter {
		// Hang like a dead link: no data, no error, until the caller
		// gives up (stall detector cancels the request or closes us).
		select {
		case <-b.ctx.Done():
			return 0, b.ctx.Err()
		case <-b.closed:
			return 0, io.ErrClosedPipe
		}
	}
	// Trim the read so a fault boundary lands exactly where scheduled.
	max := int64(len(p))
	if f.CutAfter > 0 && b.off+max > f.CutAfter {
		max = f.CutAfter - b.off
	}
	if f.StallAfter > 0 && b.off+max > f.StallAfter {
		max = f.StallAfter - b.off
	}
	n, err := b.rc.Read(p[:max])
	if f.CorruptAt > 0 && b.off < f.CorruptAt && f.CorruptAt <= b.off+int64(n) {
		p[f.CorruptAt-1-b.off] ^= 0x40
	}
	b.off += int64(n)
	return n, err
}

func (b *faultBody) Close() error {
	b.mu.Lock()
	if !b.done {
		b.done = true
		close(b.closed)
	}
	b.mu.Unlock()
	return b.rc.Close()
}
