package httpapi

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Boot-time admission: while the engine replays its store, phomd serves
// a placeholder handler that answers 503 to everything except liveness.
// The Retry-After it attaches is not a constant — it is derived from
// the replay's observed progress, so a client (or load balancer)
// retries once when the boot is nearly done instead of hammering a
// 30-second replay every second.

// Retry-After bounds for the boot handler: never tell a client to come
// back sooner than bootRetryMin (a fresh estimate is noise) or later
// than bootRetryMax (an early overestimate must not park clients long
// after the boot finished).
const (
	bootRetryMin = 1 * time.Second
	bootRetryMax = 30 * time.Second
)

// ReplayEstimator turns replay progress callbacks into a Retry-After
// estimate. Feed it Options.ReplayProgress from engine.Open; ask it
// RetryAfter while the placeholder handler is serving. Safe for
// concurrent use — the replay goroutine observes while request
// goroutines estimate.
type ReplayEstimator struct {
	mu    sync.Mutex
	now   func() time.Time // injectable for tests
	start time.Time        // first observation; zero until then
	done  int
	total int
}

// NewReplayEstimator returns an estimator using the wall clock.
func NewReplayEstimator() *ReplayEstimator {
	return &ReplayEstimator{now: time.Now}
}

// Observe records replay progress. It has the engine's ReplayProgress
// signature, so wire it directly: Options{ReplayProgress: est.Observe}.
func (e *ReplayEstimator) Observe(done, total int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.start.IsZero() {
		e.start = e.now()
	}
	e.done = done
	e.total = total
}

// RetryAfter estimates the remaining replay time from the observed
// rate (done items over elapsed time), rounded up to whole seconds and
// clamped to [1s, 30s]. Before any progress has been observed — or
// before the rate is measurable — it returns the minimum: with no
// evidence of a long boot, the cheap guess is "soon".
func (e *ReplayEstimator) RetryAfter() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.start.IsZero() || e.done <= 0 || e.total <= e.done {
		return bootRetryMin
	}
	elapsed := e.now().Sub(e.start)
	if elapsed <= 0 {
		return bootRetryMin
	}
	rate := float64(e.done) / elapsed.Seconds() // items per second
	remaining := time.Duration(float64(e.total-e.done) / rate * float64(time.Second))
	est := time.Duration(math.Ceil(remaining.Seconds())) * time.Second
	if est < bootRetryMin {
		return bootRetryMin
	}
	if est > bootRetryMax {
		return bootRetryMax
	}
	return est
}

// Booting returns the placeholder handler served while the engine
// replays: GET /healthz answers 200 (the process is alive and making
// progress), everything else answers 503 with a Retry-After derived
// from est. A nil est degrades to the constant minimum.
func Booting(est *ReplayEstimator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "booting"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		retry := bootRetryMin
		if est != nil {
			retry = est.RetryAfter()
		}
		w.Header().Set("Retry-After", formatSeconds(retry))
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "booting: store replay in progress"})
	})
	return mux
}

// formatSeconds renders a duration as the integral second count
// Retry-After requires.
func formatSeconds(d time.Duration) string {
	s := int64(d / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}
