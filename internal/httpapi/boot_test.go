package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// clock is an injectable test clock for the estimator.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestEstimator() (*ReplayEstimator, *clock) {
	c := &clock{t: time.Unix(1_700_000_000, 0)}
	return &ReplayEstimator{now: c.now}, c
}

func TestReplayEstimatorRetryAfter(t *testing.T) {
	t.Run("fresh estimator answers the minimum", func(t *testing.T) {
		est, _ := newTestEstimator()
		if got := est.RetryAfter(); got != bootRetryMin {
			t.Fatalf("RetryAfter = %v, want %v", got, bootRetryMin)
		}
	})

	t.Run("estimate follows the observed rate", func(t *testing.T) {
		est, clk := newTestEstimator()
		est.Observe(0, 100)
		clk.advance(10 * time.Second)
		est.Observe(50, 100)
		// 50 items in 10s → 5/s → 50 remaining → 10s.
		if got := est.RetryAfter(); got != 10*time.Second {
			t.Fatalf("RetryAfter = %v, want 10s", got)
		}
		// Progress without time passing shrinks the estimate.
		est.Observe(90, 100)
		if got := est.RetryAfter(); got != 2*time.Second {
			t.Fatalf("RetryAfter after 90/100 = %v, want 2s (ceil of 10/9s)", got)
		}
	})

	t.Run("slow replay clamps to the maximum", func(t *testing.T) {
		est, clk := newTestEstimator()
		est.Observe(0, 1_000_000)
		clk.advance(10 * time.Second)
		est.Observe(10, 1_000_000)
		// 1/s with ~1M remaining → clamped to 30s.
		if got := est.RetryAfter(); got != bootRetryMax {
			t.Fatalf("RetryAfter = %v, want %v", got, bootRetryMax)
		}
	})

	t.Run("total growing mid-replay extends the estimate", func(t *testing.T) {
		// openStore extends total once the fold reveals the survivor
		// count; the estimator must absorb that without going stale.
		est, clk := newTestEstimator()
		est.Observe(0, 100)
		clk.advance(5 * time.Second)
		est.Observe(100, 100) // fold done: done == total, momentarily
		if got := est.RetryAfter(); got != bootRetryMin {
			t.Fatalf("RetryAfter at done==total = %v, want %v", got, bootRetryMin)
		}
		est.Observe(100, 200) // registrations revealed
		// 100 in 5s → 20/s → 100 remaining → 5s.
		if got := est.RetryAfter(); got != 5*time.Second {
			t.Fatalf("RetryAfter after total grew = %v, want 5s", got)
		}
	})

	t.Run("finished replay answers the minimum", func(t *testing.T) {
		est, clk := newTestEstimator()
		est.Observe(0, 10)
		clk.advance(time.Hour) // even after a long boot
		est.Observe(10, 10)
		if got := est.RetryAfter(); got != bootRetryMin {
			t.Fatalf("RetryAfter = %v, want %v", got, bootRetryMin)
		}
	})
}

func TestBootingHandler(t *testing.T) {
	est, clk := newTestEstimator()
	est.Observe(0, 100)
	clk.advance(10 * time.Second)
	est.Observe(50, 100)
	h := Booting(est)

	t.Run("healthz stays live", func(t *testing.T) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /healthz = %d, want 200", rec.Code)
		}
	})

	t.Run("everything else answers 503 with the estimate", func(t *testing.T) {
		for _, target := range []string{"/readyz", "/v1/stats", "/v1/match"} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusServiceUnavailable {
				t.Fatalf("GET %s = %d, want 503", target, rec.Code)
			}
			if got := rec.Header().Get("Retry-After"); got != "10" {
				t.Fatalf("GET %s Retry-After = %q, want \"10\"", target, got)
			}
		}
	})

	t.Run("nil estimator degrades to the minimum", func(t *testing.T) {
		rec := httptest.NewRecorder()
		Booting(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/graphs", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != "1" {
			t.Fatalf("Retry-After = %q, want \"1\"", got)
		}
	})
}
