package httpapi

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"graphmatch/internal/trace"
)

// This file serves the flight recorder: GET /debug/traces lists the
// most recent completed traces (newest first, slow-ring survivors
// included) and GET /debug/traces/{id} returns one full span tree,
// looked up by trace id or by the X-Request-ID a response carried.
// Both routes live outside the observe shell — see NewWithOptions.

// TraceSummary is one row of GET /debug/traces.
type TraceSummary struct {
	ID         string    `json:"id"`
	Route      string    `json:"route"`
	RequestID  string    `json:"request_id,omitempty"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Spans      int       `json:"spans"`
	Remote     bool      `json:"remote,omitempty"`
	Slow       bool      `json:"slow,omitempty"`
	// Dominant is the EXPLAIN stage that consumed the most time, e.g.
	// "core.maxsim" — enough to triage a slow trace from the list view.
	Dominant string `json:"dominant,omitempty"`
}

// TraceListResponse is the body of GET /debug/traces.
type TraceListResponse struct {
	SlowThresholdUS int64          `json:"slow_threshold_us"`
	Completed       uint64         `json:"completed"`
	SlowRetained    uint64         `json:"slow_retained"`
	DroppedSpans    uint64         `json:"dropped_spans"`
	Traces          []TraceSummary `json:"traces"`
}

// TraceSpan is one span of a trace detail, offsets relative to the
// trace start.
type TraceSpan struct {
	ID         uint64         `json:"id"`
	Parent     uint64         `json:"parent"`
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// TraceDetailResponse is the body of GET /debug/traces/{id}.
type TraceDetailResponse struct {
	ID         string    `json:"id"`
	Route      string    `json:"route"`
	RequestID  string    `json:"request_id,omitempty"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Remote     bool      `json:"remote,omitempty"`
	// ParentSpan is the remote parent's span id when the trace was
	// re-parented under an incoming traceparent (replication apply, or
	// a request that arrived with one).
	ParentSpan   uint64      `json:"parent_span,omitempty"`
	Slow         bool        `json:"slow,omitempty"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []TraceSpan `json:"spans"`
}

func (s *server) debugTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, BuildTraceList(tr, limit))
}

// BuildTraceList assembles the GET /debug/traces body from a flight
// recorder. Shared with the cluster router, whose own recorder serves
// the same route shape.
func BuildTraceList(tr *trace.Recorder, limit int) TraceListResponse {
	st := tr.Stats()
	out := TraceListResponse{
		SlowThresholdUS: tr.SlowThreshold().Microseconds(),
		Completed:       st.Completed,
		SlowRetained:    st.Slow,
		DroppedSpans:    st.DroppedSpans,
		Traces:          []TraceSummary{},
	}
	for _, td := range tr.Snapshot(limit) {
		out.Traces = append(out.Traces, summarize(td, tr.SlowThreshold()))
	}
	return out
}

func (s *server) debugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	key := r.PathValue("id")
	td, ok := tr.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace %q in the flight recorder", key))
		return
	}
	writeJSON(w, http.StatusOK, BuildTraceDetail(tr, td))
}

// BuildTraceDetail assembles the GET /debug/traces/{id} body for one
// completed trace. Shared with the cluster router.
func BuildTraceDetail(tr *trace.Recorder, td trace.TraceData) TraceDetailResponse {
	out := TraceDetailResponse{
		ID:           td.ID.String(),
		Route:        td.Name,
		RequestID:    td.RequestID,
		Start:        td.Start,
		DurationUS:   td.Duration.Microseconds(),
		Remote:       td.Remote,
		ParentSpan:   td.Parent,
		Slow:         td.Duration >= tr.SlowThreshold(),
		DroppedSpans: td.Dropped,
		Spans:        make([]TraceSpan, 0, len(td.Spans)),
	}
	for _, sd := range td.Spans {
		ts := TraceSpan{
			ID:         sd.ID,
			Parent:     sd.Parent,
			Name:       sd.Name,
			StartUS:    sd.Start.Microseconds(),
			DurationUS: sd.Duration().Microseconds(),
		}
		if len(sd.Attrs) > 0 {
			ts.Attrs = make(map[string]any, len(sd.Attrs))
			for _, a := range sd.Attrs {
				ts.Attrs[a.Key] = a.Value()
			}
		}
		out.Spans = append(out.Spans, ts)
	}
	return out
}

func summarize(td trace.TraceData, slowThreshold time.Duration) TraceSummary {
	return TraceSummary{
		ID:         td.ID.String(),
		Route:      td.Name,
		RequestID:  td.RequestID,
		Start:      td.Start,
		DurationUS: td.Duration.Microseconds(),
		Spans:      len(td.Spans),
		Remote:     td.Remote,
		Slow:       td.Duration >= slowThreshold,
		Dominant:   dominantStage(td),
	}
}

// dominantStage names the longest EXPLAIN stage of a trace, or ""
// when the trace has none (e.g. a plain GET).
func dominantStage(td trace.TraceData) string {
	name, best := "", int64(-1)
	for _, st := range td.Stages() {
		if st.DurationUS > best {
			name, best = st.Name, st.DurationUS
		}
	}
	return name
}
