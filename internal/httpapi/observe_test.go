package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/metrics"
)

// pathGraphN and cycleN mirror the engine overload-test fixtures: a
// k-cycle pattern against a directed path is unsatisfiable but forces
// the exact decider through a long, deterministic backtrack — the
// canonical slow request for deadline and saturation tests.
func pathGraphN(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("P")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.Finish()
	return g
}

func cycleN(k int) *graph.Graph {
	g := graph.New(k)
	for i := 0; i < k; i++ {
		g.AddNode("P")
	}
	for i := 0; i < k; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%k))
	}
	g.Finish()
	return g
}

func slowMatchBody(salt int) MatchRequest {
	xi := 0.5 + float64(salt)*1e-9
	return MatchRequest{Pattern: cycleN(3), Graph: "path", Algo: "decide", Xi: &xi}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestMetricsCoversAllLayers exercises every subsystem once, scrapes
// /metrics, and round-trips the payload through the strict exposition
// parser — the acceptance gate that the output is valid Prometheus
// text AND that all five layers (http, engine pool, catalog, search,
// store) show up.
func TestMetricsCoversAllLayers(t *testing.T) {
	e, err := engine.Open(engine.Options{Workers: 2, StorePath: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{}))
	t.Cleanup(ts.Close)

	pattern, data := storeGraphs()
	register(t, ts, "fig1", data)
	if resp, body := postJSON(t, ts.URL+"/v1/match", MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxcard"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/search", SearchRequest{Pattern: pattern}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/admin/snapshot", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, body)
	}

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	fams, err := metrics.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	for _, want := range []string{
		"phomd_http_requests_total",     // transport
		"phomd_http_request_seconds",    //
		"phomd_http_in_flight",          //
		"phomd_engine_executed_total",   // worker pool
		"phomd_engine_task_run_seconds", //
		"phomd_engine_queue_depth",      //
		"phomd_catalog_graphs",          // catalog cache
		"phomd_catalog_closure_hits_total",
		"phomd_catalog_resident_bytes",
		"phomd_search_requests_total", // search
		"phomd_search_prune_ratio",    //
		"phomd_store_appended_total",  // store
		"phomd_store_fsync_seconds",   //
		"phomd_store_snapshot_seconds",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	// The match above must be visible in the executed counter and the
	// http counter for the match route.
	if f := fams["phomd_engine_executed_total"]; len(f.Samples) == 0 || f.Samples[0].Value < 1 {
		t.Error("phomd_engine_executed_total did not count the match")
	}
	found := false
	for _, s := range fams["phomd_http_requests_total"].Samples {
		if s.Labels["route"] == "POST /v1/match" && s.Labels["code"] == "200" {
			found = true
			if s.Value < 1 {
				t.Error("match route counted zero requests")
			}
		}
	}
	if !found {
		t.Error("no phomd_http_requests_total sample for POST /v1/match code=200")
	}
	// Store latency histograms must have observations (register +
	// patch-free WAL appends happened above).
	if f := fams["phomd_store_fsync_seconds"]; histCount(f) == 0 {
		t.Error("phomd_store_fsync_seconds has no observations")
	}
}

func histCount(f *metrics.Family) float64 {
	for _, s := range f.Samples {
		if strings.HasSuffix(s.Name, "_count") {
			return s.Value
		}
	}
	return 0
}

// TestMetricNamesLint pins the naming policy: every family the process
// registers matches ^phomd_[a-z0-9_]+$.
func TestMetricNamesLint(t *testing.T) {
	e, err := engine.Open(engine.Options{Workers: 1, StorePath: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{}))
	t.Cleanup(ts.Close)

	re := regexp.MustCompile(`^phomd_[a-z0-9_]+$`)
	names := e.Metrics().Names()
	if len(names) == 0 {
		t.Fatal("no registered metrics")
	}
	for _, n := range names {
		if !re.MatchString(n) {
			t.Errorf("metric %q violates the phomd_ naming policy", n)
		}
	}
}

func TestMetricsDisabledWithoutRegistry(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1, NoMetrics: true})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)
	resp, _ := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with NoMetrics engine: %d, want 404", resp.StatusCode)
	}
	// The rest of the API still works.
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestReadinessSplitsFromLiveness(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	var ready atomic.Bool
	ts := httptest.NewServer(NewWithOptions(e, Options{Ready: ready.Load}))
	t.Cleanup(ts.Close)

	resp, _ := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while booting: %d, want 200 (liveness)", resp.StatusCode)
	}
	resp, _ = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while booting: %d, want 503", resp.StatusCode)
	}
	ready.Store(true)
	resp, _ = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz when ready: %d, want 200", resp.StatusCode)
	}
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	ts, _ := newTestServer(t)
	// Absent: one is generated.
	resp, _ := getBody(t, ts.URL+"/healthz")
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Fatal("no X-Request-ID generated")
	}
	// Present: echoed verbatim, and threaded into engine errors.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "test-rid-42")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if got := r2.Header.Get("X-Request-ID"); got != "test-rid-42" {
		t.Fatalf("echoed id %q, want test-rid-42", got)
	}
}

func TestRequestIDThreadedIntoEngineErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	body, _ := bodyWithHeader(t, ts.URL+"/v1/match",
		MatchRequest{Pattern: cycleN(2), Graph: "no-such-graph", Algo: "maxcard"},
		"X-Request-ID", "rid-err-7")
	if !strings.Contains(string(body), "[req rid-err-7]") {
		t.Fatalf("engine error lacks request id: %s", body)
	}
}

func bodyWithHeader(t *testing.T, url string, v any, hk, hv string) ([]byte, *http.Response) {
	t.Helper()
	var buf bytes.Buffer
	if err := jsonEncode(&buf, v); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(hk, hv)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), resp
}

func TestAccessLogLine(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	var mu sync.Mutex
	var buf bytes.Buffer
	lg := log.New(syncWriter{&mu, &buf}, "", 0)
	ts := httptest.NewServer(NewWithOptions(e, Options{AccessLog: lg}))
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	req.Header.Set("X-Request-ID", "rid-log-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	line := buf.String()
	mu.Unlock()
	for _, want := range []string{"req_id=rid-log-1", "method=GET", "path=/v1/stats", "status=200", "bytes=", "dur="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log %q lacks %q", line, want)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestConcurrencyLimit429 pins the transport's per-endpoint gate. The
// single worker is pinned by a direct (cancellable) engine call, an
// HTTP "occupier" request parks inside the match handler waiting for
// it — holding the MatchConcurrency=1 slot — and a probe must then be
// answered 429 + Retry-After. Cancelling the blocker frees the worker
// and the occupier completes normally.
func TestConcurrencyLimit429(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{MatchConcurrency: 1}))
	t.Cleanup(ts.Close)
	register(t, ts, "path", pathGraphN(1000))

	blockerCtx, cancelBlocker := context.WithCancel(context.Background())
	defer cancelBlocker()
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		e.Match(blockerCtx, engine.Request{Pattern: cycleN(3), GraphName: "path", Algo: engine.Decide, Xi: 0.25})
	}()

	// Occupier: a quick request that parks in the handler behind the
	// busy worker, holding the concurrency slot.
	xi := 0.5
	occupierDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/match",
			MatchRequest{Pattern: pathGraphN(2), Graph: "path", Algo: "maxcard", Xi: &xi})
		occupierDone <- resp.StatusCode
	}()
	// Both the blocker (running) and the occupier (queued) are pending
	// once the occupier is parked inside the handler.
	waitFor(t, 5*time.Second, func() bool { return e.Stats().Pending >= 2 })

	probeXi := 0.75
	resp, body := postJSON(t, ts.URL+"/v1/match",
		MatchRequest{Pattern: pathGraphN(2), Graph: "path", Algo: "maxcard", Xi: &probeXi})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	cancelBlocker()
	<-blockerDone
	select {
	case code := <-occupierDone:
		if code != http.StatusOK {
			t.Fatalf("occupier finished %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("occupier never completed after the blocker was cancelled")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRequestTimeout504 pins deadline propagation end to end: the
// transport deadline reaches the matcher recursion, which aborts and
// surfaces as a 504 long before the uncancelled decide would finish.
func TestRequestTimeout504(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{RequestTimeout: 30 * time.Millisecond}))
	t.Cleanup(ts.Close)
	register(t, ts, "path", pathGraphN(1500))

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/match", slowMatchBody(0))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timed-out request took %v to answer", d)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("504 body %s does not mention the deadline", body)
	}
}

// TestEngineShedPropagatesAs429 drives the engine's admission control
// (not the transport limiter) into shedding and checks the HTTP
// mapping: 429 + Retry-After.
func TestEngineShedPropagatesAs429(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1, QueueDepth: 2, MaxPending: 2})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)
	register(t, ts, "path", pathGraphN(200))

	const n = 8
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/match", slowMatchBody(i))
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	var shed, ok int
	for i, c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("shed response without Retry-After")
			}
		case http.StatusOK:
			ok++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Error("no request shed with MaxPending=2 under 8 concurrent slow matches")
	}
	if ok == 0 {
		t.Error("every request shed; admitted work should complete")
	}
}

func TestBatchSizeCap(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{MaxBatch: 2}))
	t.Cleanup(ts.Close)
	register(t, ts, "g", pathGraphN(4))

	xi := 0.5
	mk := func() MatchRequest {
		return MatchRequest{Pattern: pathGraphN(2), Graph: "g", Algo: "maxcard", Xi: &xi}
	}
	resp, body := postJSON(t, ts.URL+"/v1/match/batch", BatchRequest{Requests: []MatchRequest{mk(), mk(), mk()}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch over cap: %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/match/batch", BatchRequest{Requests: []MatchRequest{mk(), mk()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch at cap: %d %s, want 200", resp.StatusCode, body)
	}
}

// TestExpiredDeadlineNeverReachesPool pins the preflight: a request
// whose transport deadline already passed is answered 504 without the
// engine executing anything.
func TestExpiredDeadlineNeverReachesPool(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{RequestTimeout: time.Nanosecond}))
	t.Cleanup(ts.Close)
	register(t, ts, "path", pathGraphN(50))

	before := e.Stats().Executed
	resp, _ := postJSON(t, ts.URL+"/v1/match", slowMatchBody(0))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := e.Stats().Executed; got != before {
		t.Fatalf("executed grew %d→%d for an expired-deadline request", before, got)
	}
}

func jsonEncode(w *bytes.Buffer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
