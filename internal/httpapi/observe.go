package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/repl"
	"graphmatch/internal/trace"
)

// This file is the transport's observability and overload-protection
// shell: request IDs, the access log, per-route metrics, per-request
// deadlines, per-endpoint concurrency limits, GET /metrics and the
// liveness/readiness split. The JSON handlers themselves stay in
// httpapi.go; everything here wraps them.

// DefaultMaxBatch caps POST /v1/match/batch when Options.MaxBatch is
// left zero. A batch is dispatched concurrently into the worker pool,
// so an unbounded one is an admission-control bypass.
const DefaultMaxBatch = 1024

// retryAfterSeconds is the Retry-After hint attached to every 429,
// whether from the transport's concurrency limits or from the engine's
// admission control.
const retryAfterSeconds = "1"

// Options configures the transport shell. The zero value matches the
// pre-observability behaviour: no deadline, no limits, no access log,
// always ready.
type Options struct {
	// RequestTimeout bounds each request's wall time. The deadline
	// propagates through the engine into the matcher recursion, so a
	// timed-out request answers 504 AND frees its worker instead of
	// pinning it. 0 means no per-request deadline.
	RequestTimeout time.Duration
	// MatchConcurrency, SearchConcurrency and PatchConcurrency cap how
	// many requests of each class may be inside their handler at once;
	// excess requests answer 429 + Retry-After immediately instead of
	// queueing. 0 means unlimited. MatchConcurrency covers both
	// /v1/match and /v1/match/batch.
	MatchConcurrency  int
	SearchConcurrency int
	PatchConcurrency  int
	// MaxBatch caps the element count of one batch request; 0 applies
	// DefaultMaxBatch, negative lifts the cap.
	MaxBatch int
	// AccessLog, when non-nil, receives one line per request:
	// request id, method, path, status, response bytes, duration.
	AccessLog *log.Logger
	// Ready gates GET /readyz: 200 once Ready returns true, 503 before.
	// nil means always ready. GET /healthz (liveness) is unaffected.
	Ready func() bool
}

// NewWithOptions returns the phomd handler over e with the given
// transport options. New(e) is NewWithOptions(e, Options{}).
func NewWithOptions(e *engine.Engine, opts Options) http.Handler {
	if opts.MaxBatch == 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	s := &server{
		eng:       e,
		opts:      opts,
		matchSem:  newSem(opts.MatchConcurrency),
		searchSem: newSem(opts.SearchConcurrency),
		patchSem:  newSem(opts.PatchConcurrency),
	}
	_, s.follower = e.ReplStats()
	s.initHTTPMetrics()

	mux := http.NewServeMux()
	handle := func(pattern string, sem chan struct{}, h http.HandlerFunc) {
		mux.Handle(pattern, s.observe(pattern, sem, h))
	}
	handle("POST /v1/graphs", nil, s.registerGraph)
	handle("GET /v1/graphs", nil, s.listGraphs)
	handle("GET /v1/graphs/{name}", nil, s.describeGraph)
	handle("PATCH /v1/graphs/{name}", s.patchSem, s.patchGraph)
	handle("DELETE /v1/graphs/{name}", nil, s.removeGraph)
	handle("POST /v1/admin/snapshot", nil, s.snapshot)
	handle("POST /v1/match", s.matchSem, s.match)
	handle("POST /v1/match/batch", s.matchSem, s.matchBatch)
	handle("POST /v1/search", s.searchSem, s.search)
	handle("GET /v1/stats", nil, s.stats)
	handle("GET /healthz", nil, s.health)
	handle("GET /readyz", nil, s.readyz)
	if src := e.ReplSource(); src != nil {
		// The replication stream is mounted outside the observe shell:
		// it is unbounded by design, so the per-request deadline must
		// not cut it, and a stream that lives for hours would only
		// distort the latency histograms.
		mux.Handle("GET /v1/replicate/since/{seq}", repl.NewHandler(src, repl.HandlerOptions{}))
	}
	// The flight-recorder introspection routes are mounted outside the
	// observe shell, like /metrics: reading traces must not generate
	// traces, distort the latency histograms or consume request IDs.
	mux.HandleFunc("GET /debug/traces", s.debugTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.debugTrace)
	if reg := e.Metrics(); reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	} else {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotFound, fmt.Errorf("metrics disabled"))
		})
	}
	return mux
}

// newSem builds a concurrency-limit semaphore; 0 or negative means
// unlimited (nil, which observe treats as "skip the gate").
func newSem(n int) chan struct{} {
	if n <= 0 {
		return nil
	}
	return make(chan struct{}, n)
}

// initHTTPMetrics registers the transport families into the engine's
// registry. With Options.NoMetrics on the engine there is no registry
// and every instrument stays nil — the nil-safe metric methods make
// the whole shell free. If another handler already registered the
// families (two handlers over one engine), this one leaves its
// instruments nil rather than double-registering.
func (s *server) initHTTPMetrics() {
	reg := s.eng.Metrics()
	if reg == nil {
		return
	}
	for _, n := range reg.Names() {
		if n == "phomd_http_requests_total" {
			return
		}
	}
	s.mRequests = reg.CounterVec("phomd_http_requests_total",
		"HTTP requests by route, method and status code.",
		"route", "method", "code")
	s.mLatency = reg.HistogramVec("phomd_http_request_seconds",
		"End-to-end request latency by route.", nil, "route")
	s.mRespBytes = reg.CounterVec("phomd_http_response_bytes_total",
		"Response body bytes by route.", "route")
	s.mLimited = reg.CounterVec("phomd_http_limited_total",
		"Requests answered 429 by the per-endpoint concurrency limits.",
		"route")
	s.mInFlight = reg.Gauge("phomd_http_in_flight",
		"Requests currently inside a handler.")
}

// observe wraps a handler with the full transport shell, outermost to
// innermost: request-ID assignment, in-flight accounting, the
// concurrency gate, the per-request deadline, then the handler; after
// it returns, per-route metrics and the access log line.
func (s *server) observe(route string, sem chan struct{}, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		if s.follower {
			// Stale-read disclosure: every follower response carries how
			// many primary ops it is behind, so clients that care about
			// read-your-writes can check (0 = at the primary's head as of
			// the last checkpoint).
			if rs, ok := s.eng.ReplStats(); ok {
				w.Header().Set("X-Replication-Lag", strconv.FormatUint(rs.LagSeq, 10))
			}
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// The root span opens before the concurrency gate so shed
		// requests are traced too — a 429 with a trace_id is evidence,
		// not a mystery. An incoming traceparent is continued (the trace
		// files under the caller's id); otherwise the request id doubles
		// as the trace identity, so GET /debug/traces/{X-Request-ID}
		// finds the trace of any response.
		sp := s.startTrace(r, route, id, start)
		if sp.Active() {
			rec.traceID = sp.TraceID().String()
			rec.Header().Set("traceparent", sp.Traceparent())
		}
		s.mInFlight.Inc()
		defer func() {
			s.mInFlight.Dec()
			s.finish(rec, r, route, id, start, sp)
		}()

		if sem != nil {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				s.mLimited.With(route).Inc()
				sp.SetBool("limited", true)
				rec.Header().Set("Retry-After", retryAfterSeconds)
				writeError(rec, http.StatusTooManyRequests,
					fmt.Errorf("concurrency limit reached for %s", route))
				return
			}
		}

		ctx := engine.WithRequestID(r.Context(), id)
		if sp.Active() {
			ctx = trace.ContextWithSpan(ctx, sp)
		}
		if s.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		h(rec, r.WithContext(ctx))
	})
}

// startTrace opens the request's root span in the engine's flight
// recorder: inert when tracing is disabled, re-parented under the
// caller's trace when the request carries a valid traceparent, and
// otherwise rooted at a trace id derived from the request id.
func (s *server) startTrace(r *http.Request, route, id string, start time.Time) trace.Span {
	tr := s.eng.Tracer()
	if tr == nil {
		return trace.Span{}
	}
	if h := r.Header.Get("traceparent"); h != "" {
		if tid, parent, ok := trace.ParseTraceparent(h); ok {
			return tr.StartRemoteAt(tid, parent, route, id, start)
		}
	}
	return tr.StartTraceAt(trace.DeriveTraceID(id), route, id, start)
}

// finish records the per-route metrics, seals the trace and emits the
// access log line — all from one clock read, so the histogram sample,
// the dur= field and the trace's root duration agree exactly.
func (s *server) finish(rec *statusRecorder, r *http.Request, route, id string, start time.Time, sp trace.Span) {
	elapsed := time.Since(start)
	if sp.Active() {
		sp.SetInt("http_status", int64(rec.status))
		sp.EndAfter(elapsed)
	}
	s.mRequests.With(route, r.Method, strconv.Itoa(rec.status)).Inc()
	if lat := s.mLatency.With(route); rec.traceID != "" {
		lat.ObserveWithExemplar(elapsed.Seconds(), "trace_id", rec.traceID)
	} else {
		lat.Observe(elapsed.Seconds())
	}
	s.mRespBytes.With(route).Add(uint64(rec.bytes))
	if lg := s.opts.AccessLog; lg != nil {
		if rec.traceID != "" {
			lg.Printf("req_id=%s trace_id=%s method=%s path=%s status=%d bytes=%d dur=%s",
				id, rec.traceID, r.Method, r.URL.Path, rec.status, rec.bytes, elapsed.Round(time.Microsecond))
		} else {
			lg.Printf("req_id=%s method=%s path=%s status=%d bytes=%d dur=%s",
				id, r.Method, r.URL.Path, rec.status, rec.bytes, elapsed.Round(time.Microsecond))
		}
	}
}

// readyz is the readiness probe: load balancers stop routing to a
// not-ready instance, while healthz keeps reporting the process alive.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.opts.Ready == nil || s.opts.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
}

// statusRecorder captures the status code and body size a handler
// wrote, for metrics and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	// traceID is the request's 32-hex trace id when tracing is on;
	// writeError stamps it into error bodies so a 429 or 504 names the
	// flight-recorder entry that explains it.
	traceID string
}

func (rec *statusRecorder) WriteHeader(code int) {
	rec.status = code
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(p []byte) (int, error) {
	n, err := rec.ResponseWriter.Write(p)
	rec.bytes += n
	return n, err
}

// Flush delegates to the wrapped writer so streaming handlers behind
// the observe shell (chunked responses) still flush; without this the
// recorder would hide the Flusher interface and buffer the stream.
func (rec *statusRecorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRequestID returns a fresh 16-hex-char identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// writeEngineError maps an engine failure to its HTTP status; 429s
// carry the same Retry-After hint the transport-level limiter uses.
func writeEngineError(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeError(w, code, err)
}
