package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"graphmatch/internal/engine"
)

// Fuzz the POST /v1/graphs decode path end to end: arbitrary bodies —
// malformed JSON, edges referencing nodes outside [0, n), negative
// ids, unknown fields, truncated documents — must come back as clean
// HTTP statuses, never as a handler panic or a 5xx. The graph decoder
// (graph.UnmarshalJSON) validates edge endpoints; this pins that the
// transport surfaces those failures as 400s.

var (
	fuzzOnce sync.Once
	fuzzEng  *engine.Engine
	fuzzMux  http.Handler
)

// fuzzHandler shares one engine across all fuzz iterations: the target
// is the decoder, and spinning a worker pool per input would drown the
// fuzzer in goroutine churn.
func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		fuzzEng = engine.New(engine.Options{Workers: 1})
		fuzzMux = New(fuzzEng)
	})
	return fuzzMux
}

func FuzzRegisterGraph(f *testing.F) {
	f.Add([]byte(`{"name":"g","graph":{"nodes":[{"label":"a"},{"label":"b"}],"edges":[[0,1]]}}`))
	f.Add([]byte(`{"name":"bad","graph":{"nodes":[{"label":"a"}],"edges":[[0,5]]}}`))
	f.Add([]byte(`{"name":"neg","graph":{"nodes":[{"label":"a"}],"edges":[[-1,0]]}}`))
	f.Add([]byte(`{"name":"loop","graph":{"nodes":[{"label":"a"}],"edges":[[0,0],[0,0]]}}`))
	f.Add([]byte(`{"name":"","graph":{"nodes":[],"edges":[]}}`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`{"graph":{"nodes":[{"label":"a","weight":1e308}],"edges":[]}}`))
	f.Add([]byte(`{"name":"u","graph":{"nodes":[{"label":"a"}],"edges":[[0`))
	f.Add([]byte(`{"name":"dup","extra":true,"graph":{"nodes":[],"edges":[]}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/graphs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusCreated:
			// Unregister successful inputs so a long fuzz run stays O(1)
			// in memory (the catalog keeps graphs resident until removed)
			// — which also drags Remove through the fuzzer's corpus.
			var ack RegisterResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
				t.Fatalf("undecodable 201 body %q: %v", rec.Body.Bytes(), err)
			}
			if err := fuzzEng.Remove(ack.Name); err != nil {
				t.Fatalf("removing registered graph %q: %v", ack.Name, err)
			}
		case http.StatusBadRequest, http.StatusConflict:
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}
