package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
)

// Fuzz the POST /v1/graphs decode path end to end: arbitrary bodies —
// malformed JSON, edges referencing nodes outside [0, n), negative
// ids, unknown fields, truncated documents — must come back as clean
// HTTP statuses, never as a handler panic or a 5xx. The graph decoder
// (graph.UnmarshalJSON) validates edge endpoints; this pins that the
// transport surfaces those failures as 400s.

var (
	fuzzOnce sync.Once
	fuzzEng  *engine.Engine
	fuzzMux  http.Handler
)

// fuzzHandler shares one engine across all fuzz iterations: the target
// is the decoder, and spinning a worker pool per input would drown the
// fuzzer in goroutine churn.
func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		fuzzEng = engine.New(engine.Options{Workers: 1})
		fuzzMux = New(fuzzEng)
	})
	return fuzzMux
}

func FuzzRegisterGraph(f *testing.F) {
	f.Add([]byte(`{"name":"g","graph":{"nodes":[{"label":"a"},{"label":"b"}],"edges":[[0,1]]}}`))
	f.Add([]byte(`{"name":"bad","graph":{"nodes":[{"label":"a"}],"edges":[[0,5]]}}`))
	f.Add([]byte(`{"name":"neg","graph":{"nodes":[{"label":"a"}],"edges":[[-1,0]]}}`))
	f.Add([]byte(`{"name":"loop","graph":{"nodes":[{"label":"a"}],"edges":[[0,0],[0,0]]}}`))
	f.Add([]byte(`{"name":"","graph":{"nodes":[],"edges":[]}}`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`{"graph":{"nodes":[{"label":"a","weight":1e308}],"edges":[]}}`))
	f.Add([]byte(`{"name":"u","graph":{"nodes":[{"label":"a"}],"edges":[[0`))
	f.Add([]byte(`{"name":"dup","extra":true,"graph":{"nodes":[],"edges":[]}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/graphs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusCreated:
			// Unregister successful inputs so a long fuzz run stays O(1)
			// in memory (the catalog keeps graphs resident until removed)
			// — which also drags Remove through the fuzzer's corpus.
			var ack RegisterResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
				t.Fatalf("undecodable 201 body %q: %v", rec.Body.Bytes(), err)
			}
			if err := fuzzEng.Remove(ack.Name); err != nil {
				t.Fatalf("removing registered graph %q: %v", ack.Name, err)
			}
		case http.StatusBadRequest, http.StatusConflict:
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}

var (
	patchOnce sync.Once
	patchEng  *engine.Engine
	patchMux  http.Handler
)

// patchBase is the pristine target graph every successful fuzz
// mutation is reset from: a content-carrying 4-chain with one chord.
func patchBase() *graph.Graph {
	g := graph.New(4)
	for _, l := range []string{"a", "b", "c", "d"} {
		g.AddNodeFull(graph.Node{Label: l, Weight: 1, Content: "page " + l})
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 2)
	g.Finish()
	return g
}

// patchHandler shares one engine with the patch coalescer enabled, so
// the fuzzer also drags the batching layer (single-patch fast path)
// behind PATCH. A separate engine from FuzzRegisterGraph's: that one's
// catalog must stay empty between iterations.
func patchHandler(t *testing.T) http.Handler {
	patchOnce.Do(func() {
		patchEng = engine.New(engine.Options{Workers: 1, PatchCoalesceCount: 8})
		patchMux = New(patchEng)
	})
	if patchEng.Catalog().Len() == 0 {
		if err := patchEng.Register("t", patchBase()); err != nil {
			t.Fatalf("registering fuzz target: %v", err)
		}
	}
	return patchMux
}

// FuzzApplyPatch fuzzes the PATCH /v1/graphs/{name} decode-and-apply
// path end to end: arbitrary bodies — malformed JSON, edges and
// set_content targets outside the graph, negative ids, empty patches,
// deletes of absent edges — must come back as clean 400s, and anything
// accepted must leave the catalog agreeing with the acknowledged
// node/edge counts. Never a panic or a 5xx.
func FuzzApplyPatch(f *testing.F) {
	f.Add([]byte(`{"add_edges":[[0,3]]}`))
	f.Add([]byte(`{"del_edges":[[0,2]]}`))
	f.Add([]byte(`{"del_edges":[[2,0]]}`))
	f.Add([]byte(`{"add_nodes":[{"label":"e","weight":1,"content":"page e"}],"add_edges":[[3,4]]}`))
	f.Add([]byte(`{"set_content":[{"node":1,"content":"rewritten"}]}`))
	f.Add([]byte(`{"set_content":[{"node":99,"content":"x"}]}`))
	f.Add([]byte(`{"add_edges":[[0,99]]}`))
	f.Add([]byte(`{"add_edges":[[-1,0]]}`))
	f.Add([]byte(`{"del_edges":[[0,1]],"add_edges":[[0,1]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"unknown_field":true,"add_edges":[[0,1]]}`))
	f.Add([]byte(`{"add_edges":[[0`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		h := patchHandler(t)
		req := httptest.NewRequest(http.MethodPatch, "/v1/graphs/t", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			var ack PatchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
				t.Fatalf("undecodable 200 body %q: %v", rec.Body.Bytes(), err)
			}
			g, err := patchEng.Catalog().Get("t")
			if err != nil {
				t.Fatalf("patched graph vanished: %v", err)
			}
			if g.NumNodes() != ack.Nodes || g.NumEdges() != ack.Edges {
				t.Fatalf("ack says %d/%d, catalog has %d/%d",
					ack.Nodes, ack.Edges, g.NumNodes(), g.NumEdges())
			}
			// Reset to the pristine base so a long run stays O(1) in
			// memory (add_nodes would otherwise grow the target without
			// bound) — which also drags Remove through the corpus.
			if err := patchEng.Remove("t"); err != nil {
				t.Fatalf("resetting fuzz target: %v", err)
			}
		case http.StatusBadRequest:
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}
