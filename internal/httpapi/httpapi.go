// Package httpapi is the JSON-over-HTTP transport of the phomd server.
// It is a thin, stateless layer over engine.Engine: graphs arrive in
// the documented internal/graph wire format ({"nodes": [...], "edges":
// [[from, to], ...]}), and every matching decision — scheduling,
// coalescing, shared closures — lives below in the engine and catalog.
//
// Routes:
//
//	POST   /v1/graphs          register a data graph {"name": ..., "graph": {...}}
//	GET    /v1/graphs          list registered graph names (sorted)
//	GET    /v1/graphs/{name}   describe one graph (size, resident closure tier/bytes)
//	PATCH  /v1/graphs/{name}   apply a live edge/node patch (add_nodes, add_edges,
//	                           del_edges, set_content); durable before acknowledged
//	                           when the server runs with -store
//	DELETE /v1/graphs/{name}   drop a registered graph and its cached indexes
//	POST   /v1/match           one match request (?explain=1 adds the per-stage breakdown)
//	POST   /v1/match/batch     {"requests": [...]} dispatched concurrently
//	POST   /v1/search          rank the catalog against a pattern (top-k; ?explain=1 as above)
//	POST   /v1/admin/snapshot  compact the WAL into a fresh snapshot (store only)
//	GET    /v1/stats           engine + catalog + store counters
//	GET    /metrics            Prometheus text exposition of every layer
//	                           (OpenMetrics with exemplars via Accept)
//	GET    /debug/traces       flight recorder: recent + retained slow traces
//	GET    /debug/traces/{id}  one span tree, by trace id or X-Request-ID
//	GET    /healthz            liveness (process up)
//	GET    /readyz             readiness (store replayed, catalog warm)
//
// Observability and overload protection — request IDs, access log,
// per-route metrics, per-request deadlines and per-endpoint
// concurrency limits — live in observe.go and are configured through
// Options / NewWithOptions.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"graphmatch/internal/catalog"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/metrics"
	"graphmatch/internal/repl"
	"graphmatch/internal/store"
	"graphmatch/internal/trace"
)

// DefaultXi is applied when a match request omits "xi". It matches the
// phom CLI default (the paper's experiments run ξ around 0.75–0.9);
// explicit 0 is honoured.
const DefaultXi = 0.75

// maxBodyBytes bounds request bodies; graphs beyond this belong in a
// bulk-loading path, not a JSON POST.
const maxBodyBytes = 64 << 20

// RegisterRequest is the body of POST /v1/graphs.
type RegisterRequest struct {
	Name  string       `json:"name"`
	Graph *graph.Graph `json:"graph"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

// RemoveResponse acknowledges a DELETE /v1/graphs/{name}.
type RemoveResponse struct {
	Name    string `json:"name"`
	Removed bool   `json:"removed"`
}

// ContentPatch is one node-content rewrite inside a PatchRequest.
type ContentPatch struct {
	Node    int32  `json:"node"`
	Content string `json:"content"`
}

// PatchNode is one appended node inside a PatchRequest.
type PatchNode struct {
	Label   string  `json:"label"`
	Weight  float64 `json:"weight,omitempty"`
	Content string  `json:"content,omitempty"`
}

// PatchRequest is the body of PATCH /v1/graphs/{name}: a live edit of
// a registered graph. Semantics follow graph.Patch — added nodes get
// the next IDs (so add_edges may reference them), deletes run before
// adds, deleting an absent edge is an error. At least one field must
// be non-empty.
type PatchRequest struct {
	AddNodes   []PatchNode    `json:"add_nodes,omitempty"`
	SetContent []ContentPatch `json:"set_content,omitempty"`
	DelEdges   [][2]int32     `json:"del_edges,omitempty"`
	AddEdges   [][2]int32     `json:"add_edges,omitempty"`
}

// PatchResponse acknowledges a PATCH: the graph's new size. When the
// response arrives the patch is durable (if the server has a store)
// and the graph is already matchable and searchable in patched form.
type PatchResponse struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

// SnapshotResponse is the body of POST /v1/admin/snapshot: the store
// counters after the compaction.
type SnapshotResponse struct {
	Store store.Stats `json:"store"`
}

// MatchRequest is the body of POST /v1/match and the element type of
// batch requests. Xi is a pointer so "absent" and "0" are
// distinguishable; absent means DefaultXi.
type MatchRequest struct {
	Pattern   *graph.Graph `json:"pattern"`
	Graph     string       `json:"graph"`
	Algo      string       `json:"algo"`
	Xi        *float64     `json:"xi,omitempty"`
	PathLimit int          `json:"path_limit,omitempty"`
	Sim       string       `json:"sim,omitempty"`
}

// MatchResponse is the result of one match request. Mapping pairs are
// [patternNode, dataNode], sorted by pattern node.
type MatchResponse struct {
	Algo         string     `json:"algo"`
	Graph        string     `json:"graph"`
	Holds        bool       `json:"holds"`
	Mapping      [][2]int32 `json:"mapping,omitempty"`
	Matched      int        `json:"matched"`
	PatternNodes int        `json:"pattern_nodes"`
	QualCard     float64    `json:"qual_card"`
	QualSim      float64    `json:"qual_sim"`
	ElapsedUS    int64      `json:"elapsed_us"`
	Coalesced    bool       `json:"coalesced"`
	Error        string     `json:"error,omitempty"`
	// TraceID and Explain are present only on ?explain=1 responses:
	// the request's trace id and its deterministic per-stage breakdown
	// (same stage set for the same query shape on every run).
	TraceID string        `json:"trace_id,omitempty"`
	Explain []trace.Stage `json:"explain,omitempty"`
}

// BatchRequest is the body of POST /v1/match/batch.
type BatchRequest struct {
	Requests []MatchRequest `json:"requests"`
}

// BatchResponse carries positional results for a batch.
type BatchResponse struct {
	Results []MatchResponse `json:"results"`
}

// GraphDetailResponse is the body of GET /v1/graphs/{name}: the
// catalog's view of one registered graph plus its degree statistics.
type GraphDetailResponse struct {
	catalog.GraphInfo
	AvgDeg float64 `json:"avg_deg"`
	MaxDeg int     `json:"max_deg"`
}

// SearchRequest is the body of POST /v1/search. Xi and MinResemblance
// are pointers so "absent" and "explicit 0" are distinguishable:
// absent xi means DefaultXi; absent min_resemblance means the server's
// configured default, explicit 0 disables pruning (exact search).
// MaxCandidates: 0 or absent applies the server default, -1 lifts the
// cap. K ≤ 0 applies the engine default top-k size.
type SearchRequest struct {
	Pattern        *graph.Graph `json:"pattern"`
	Algo           string       `json:"algo,omitempty"`
	Xi             *float64     `json:"xi,omitempty"`
	PathLimit      int          `json:"path_limit,omitempty"`
	Sim            string       `json:"sim,omitempty"`
	K              int          `json:"k,omitempty"`
	MaxCandidates  int          `json:"max_candidates,omitempty"`
	MinResemblance *float64     `json:"min_resemblance,omitempty"`
	NoPrefilter    bool         `json:"no_prefilter,omitempty"`
}

// SearchHitResponse is one ranked hit of a search.
type SearchHitResponse struct {
	Rank        int     `json:"rank"`
	Graph       string  `json:"graph"`
	Score       float64 `json:"score"`
	Holds       bool    `json:"holds"`
	Matched     int     `json:"matched"`
	QualCard    float64 `json:"qual_card"`
	QualSim     float64 `json:"qual_sim"`
	Containment float64 `json:"containment"`
	StructSim   float64 `json:"struct_sim"`
}

// SearchStatsResponse reports the per-stage search work: how much of
// the catalog the prefilter skipped and what each stage cost.
type SearchStatsResponse struct {
	Graphs     int     `json:"graphs"`
	Candidates int     `json:"candidates"`
	Pruned     int     `json:"pruned"`
	Matched    int     `json:"matched"`
	Missing    int     `json:"missing,omitempty"`
	PruneRate  float64 `json:"prune_rate"`
	Stage1US   int64   `json:"stage1_us"`
	Stage2US   int64   `json:"stage2_us"`
}

// SearchResponse is the body of a successful POST /v1/search.
type SearchResponse struct {
	Algo         string              `json:"algo"`
	K            int                 `json:"k"`
	PatternNodes int                 `json:"pattern_nodes"`
	Hits         []SearchHitResponse `json:"hits"`
	Stats        SearchStatsResponse `json:"stats"`
	// TraceID and Explain mirror MatchResponse's ?explain=1 fields.
	TraceID string        `json:"trace_id,omitempty"`
	Explain []trace.Stage `json:"explain,omitempty"`
}

// StatsResponse is the body of GET /v1/stats. Store is nil when the
// server runs without persistence; Replication is nil unless the
// server is a follower (phomd -follow).
type StatsResponse struct {
	Engine      engine.Stats `json:"engine"`
	Catalog     catalogStats `json:"catalog"`
	Store       *store.Stats `json:"store,omitempty"`
	Replication *repl.Stats  `json:"replication,omitempty"`
}

// catalogStats extends catalog.Stats with the derived hit rate so
// dashboards need no arithmetic.
type catalogStats struct {
	catalog.Stats
	HitRate float64 `json:"hit_rate"`
}

type errorResponse struct {
	Error string `json:"error"`
	// TraceID names the flight-recorder trace of the failed request
	// (when tracing is on), so a 429 or 504 can be followed up with
	// GET /debug/traces/{trace_id} or `phom trace <trace_id>`.
	TraceID string `json:"trace_id,omitempty"`
}

// New returns the phomd handler over e with default transport options
// (no deadline, no limits, no access log). See NewWithOptions.
func New(e *engine.Engine) http.Handler {
	return NewWithOptions(e, Options{})
}

type server struct {
	eng  *engine.Engine
	opts Options
	// follower is fixed at construction: whether eng replicates from a
	// primary (and so should advertise X-Replication-Lag on responses).
	follower bool

	// Per-endpoint concurrency gates; nil means unlimited.
	matchSem  chan struct{}
	searchSem chan struct{}
	patchSem  chan struct{}

	// Transport metric families; nil (engine without a registry, or a
	// second handler over the same engine) means no-op.
	mRequests  *metrics.CounterVec
	mLatency   *metrics.HistogramVec
	mRespBytes *metrics.CounterVec
	mLimited   *metrics.CounterVec
	mInFlight  *metrics.Gauge
}

func (s *server) registerGraph(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph name"))
		return
	}
	if req.Graph == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph"))
		return
	}
	if err := s.eng.RegisterCtx(r.Context(), req.Name, req.Graph); err != nil {
		s.writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		Name:  req.Name,
		Nodes: req.Graph.NumNodes(),
		Edges: req.Graph.NumEdges(),
	})
}

func (s *server) listGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"graphs": s.eng.Catalog().Names()})
}

func (s *server) describeGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, err := s.eng.Catalog().Describe(name)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	out := GraphDetailResponse{GraphInfo: info}
	if g, err := s.eng.Catalog().Get(name); err == nil {
		st := graph.ComputeStats(g)
		out.AvgDeg = st.AvgDeg
		out.MaxDeg = st.MaxDeg
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) patchGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PatchRequest
	if !decode(w, r, &req) {
		return
	}
	// Validation — empty patch, bad node IDs, absent edges — lives in
	// catalog.Apply and surfaces as ErrBadPatch (400 via statusFor).
	g, err := s.eng.ApplyPatchCtx(r.Context(), name, req.toPatch())
	if err != nil {
		// catalog.ErrBadPatch → 400, ErrNotFound → 404, follower → 421
		// via statusFor; anything else (store I/O) is a genuine 500.
		s.writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, PatchResponse{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()})
}

func (s *server) snapshot(w http.ResponseWriter, r *http.Request) {
	st, err := s.eng.Snapshot()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Store: st})
}

func (s *server) removeGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph name"))
		return
	}
	if err := s.eng.RemoveCtx(r.Context(), name); err != nil {
		s.writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, RemoveResponse{Name: name, Removed: true})
}

func (s *server) match(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if !decode(w, r, &req) {
		return
	}
	ereq, err := req.toEngine()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res := s.eng.Match(r.Context(), ereq)
	if res.Err != nil {
		writeEngineError(w, res.Err)
		return
	}
	out := toResponse(req, res)
	if wantExplain(r) {
		out.TraceID, out.Explain = explainOf(r)
	}
	writeJSON(w, http.StatusOK, out)
}

// wantExplain reports whether the request asked for the per-stage
// EXPLAIN breakdown (?explain=1).
func wantExplain(r *http.Request) bool {
	v := r.URL.Query().Get("explain")
	return v == "1" || v == "true"
}

// explainOf snapshots the request's live trace and derives the
// deterministic stage breakdown; empty when tracing is disabled.
func explainOf(r *http.Request) (string, []trace.Stage) {
	sp := trace.SpanFromContext(r.Context())
	td, ok := sp.Snapshot()
	if !ok {
		return "", nil
	}
	return td.ID.String(), td.Stages()
}

func (s *server) matchBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !decode(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if s.opts.MaxBatch > 0 && len(batch.Requests) > s.opts.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(batch.Requests), s.opts.MaxBatch))
		return
	}
	// Convert up front and dispatch only the well-formed items, so
	// malformed ones don't inflate engine counters with doomed submits.
	ereqs := make([]engine.Request, 0, len(batch.Requests))
	pos := make([]int, 0, len(batch.Requests))
	out := BatchResponse{Results: make([]MatchResponse, len(batch.Requests))}
	for i, mr := range batch.Requests {
		ereq, err := mr.toEngine()
		if err != nil {
			out.Results[i] = MatchResponse{Algo: mr.Algo, Graph: mr.Graph, Error: err.Error()}
			continue
		}
		ereqs = append(ereqs, ereq)
		pos = append(pos, i)
	}
	results := s.eng.MatchBatch(r.Context(), ereqs)
	shedAll := len(results) > 0
	for j, res := range results {
		i := pos[j]
		if res.Err != nil {
			out.Results[i] = MatchResponse{Algo: batch.Requests[i].Algo, Graph: batch.Requests[i].Graph, Error: res.Err.Error()}
			if !errors.Is(res.Err, engine.ErrOverloaded) {
				shedAll = false
			}
			continue
		}
		shedAll = false
		out.Results[i] = toResponse(batch.Requests[i], res)
	}
	// A batch the admission controller rejected wholesale is a 429 —
	// the client should back off, not inspect per-item errors.
	if shedAll {
		writeEngineError(w, results[0].Err)
		return
	}
	// Otherwise the batch as a whole is 200; per-item failures ride in
	// "error".
	writeJSON(w, http.StatusOK, out)
}

func (s *server) search(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	ereq, err := req.toEngine()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res := s.eng.Search(r.Context(), ereq)
	if res.Err != nil {
		writeEngineError(w, res.Err)
		return
	}
	k := ereq.K
	if k <= 0 {
		k = engine.DefaultSearchK
	}
	out := SearchResponse{
		Algo:         string(ereq.Algo),
		K:            k,
		PatternNodes: req.Pattern.NumNodes(),
		Hits:         make([]SearchHitResponse, 0, len(res.Hits)),
		Stats: SearchStatsResponse{
			Graphs:     res.Stats.Graphs,
			Candidates: res.Stats.Candidates,
			Pruned:     res.Stats.Pruned,
			Matched:    res.Stats.Matched,
			Missing:    res.Stats.Missing,
			PruneRate:  res.Stats.PruneRate,
			Stage1US:   res.Stats.Stage1.Microseconds(),
			Stage2US:   res.Stats.Stage2.Microseconds(),
		},
	}
	for i, h := range res.Hits {
		out.Hits = append(out.Hits, SearchHitResponse{
			Rank:        i + 1,
			Graph:       h.Graph,
			Score:       h.Score,
			Holds:       h.Holds,
			Matched:     h.Matched,
			QualCard:    h.QualCard,
			QualSim:     h.QualSim,
			Containment: h.Containment,
			StructSim:   h.StructSim,
		})
	}
	if wantExplain(r) {
		out.TraceID, out.Explain = explainOf(r)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	cs := s.eng.Catalog().Stats()
	out := StatsResponse{
		Engine:  s.eng.Stats(),
		Catalog: catalogStats{Stats: cs, HitRate: cs.HitRate()},
	}
	if st, ok := s.eng.StoreStats(); ok {
		out.Store = &st
	}
	if rs, ok := s.eng.ReplStats(); ok {
		out.Replication = &rs
	}
	writeJSON(w, http.StatusOK, out)
}

// toPatch converts the wire patch to the graph-level one.
func (pr PatchRequest) toPatch() *graph.Patch {
	p := &graph.Patch{}
	for _, n := range pr.AddNodes {
		p.AddNodes = append(p.AddNodes, graph.Node{Label: n.Label, Weight: n.Weight, Content: n.Content})
	}
	for _, cu := range pr.SetContent {
		p.SetContent = append(p.SetContent, graph.ContentUpdate{Node: graph.NodeID(cu.Node), Content: cu.Content})
	}
	for _, e := range pr.DelEdges {
		p.DelEdges = append(p.DelEdges, [2]graph.NodeID{graph.NodeID(e[0]), graph.NodeID(e[1])})
	}
	for _, e := range pr.AddEdges {
		p.AddEdges = append(p.AddEdges, [2]graph.NodeID{graph.NodeID(e[0]), graph.NodeID(e[1])})
	}
	return p
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// toEngine validates the wire request and converts it. Invalid
// requests error here so bad algorithm names surface as 400s even when
// the engine would also reject them.
func (mr MatchRequest) toEngine() (engine.Request, error) {
	if mr.Pattern == nil {
		return engine.Request{}, fmt.Errorf("missing pattern")
	}
	if mr.Graph == "" {
		return engine.Request{}, fmt.Errorf("missing graph name")
	}
	algo, err := engine.ParseAlgorithm(mr.Algo)
	if err != nil {
		return engine.Request{}, err
	}
	xi := DefaultXi
	if mr.Xi != nil {
		xi = *mr.Xi
	}
	if xi < 0 || xi > 1 {
		return engine.Request{}, fmt.Errorf("xi %v outside [0, 1]", xi)
	}
	switch engine.SimKind(mr.Sim) {
	case "", engine.SimLabel, engine.SimContent:
	default:
		return engine.Request{}, fmt.Errorf("unknown similarity kind %q", mr.Sim)
	}
	return engine.Request{
		Pattern:   mr.Pattern,
		GraphName: mr.Graph,
		Algo:      algo,
		Xi:        xi,
		PathLimit: mr.PathLimit,
		Sim:       engine.SimKind(mr.Sim),
	}, nil
}

// toEngine validates the wire search request and converts it. The
// engine's "0 means server default" convention is mapped here: an
// explicit wire 0 for min_resemblance becomes the engine's "no
// pruning" (-1), and max_candidates -1 becomes the engine's unlimited.
func (sr SearchRequest) toEngine() (engine.SearchRequest, error) {
	if sr.Pattern == nil {
		return engine.SearchRequest{}, fmt.Errorf("missing pattern")
	}
	algo := sr.Algo
	if algo == "" {
		algo = string(engine.MaxSim)
	}
	parsed, err := engine.ParseAlgorithm(algo)
	if err != nil {
		return engine.SearchRequest{}, err
	}
	xi := DefaultXi
	if sr.Xi != nil {
		xi = *sr.Xi
	}
	if xi < 0 || xi > 1 {
		return engine.SearchRequest{}, fmt.Errorf("xi %v outside [0, 1]", xi)
	}
	switch engine.SimKind(sr.Sim) {
	case "", engine.SimLabel, engine.SimContent:
	default:
		return engine.SearchRequest{}, fmt.Errorf("unknown similarity kind %q", sr.Sim)
	}
	k := sr.K
	if k < 0 {
		return engine.SearchRequest{}, fmt.Errorf("k %d negative", k)
	}
	maxCand := sr.MaxCandidates
	if maxCand < -1 {
		return engine.SearchRequest{}, fmt.Errorf("max_candidates %d invalid (want -1, 0 or a positive cap)", maxCand)
	}
	minRes := 0.0
	if sr.MinResemblance != nil {
		minRes = *sr.MinResemblance
		if minRes < 0 || minRes > 1 {
			return engine.SearchRequest{}, fmt.Errorf("min_resemblance %v outside [0, 1]", minRes)
		}
		if minRes == 0 {
			minRes = -1 // explicit 0: disable pruning rather than "use default"
		}
	}
	return engine.SearchRequest{
		Pattern:        sr.Pattern,
		Algo:           parsed,
		Xi:             xi,
		PathLimit:      sr.PathLimit,
		Sim:            engine.SimKind(sr.Sim),
		K:              k,
		MaxCandidates:  maxCand,
		MinResemblance: minRes,
		NoPrefilter:    sr.NoPrefilter,
	}, nil
}

func toResponse(req MatchRequest, res engine.Result) MatchResponse {
	out := MatchResponse{
		Algo:         req.Algo,
		Graph:        req.Graph,
		Holds:        res.Holds,
		Matched:      len(res.Mapping),
		PatternNodes: req.Pattern.NumNodes(),
		QualCard:     res.QualCard,
		QualSim:      res.QualSim,
		ElapsedUS:    res.Elapsed.Microseconds(),
		Coalesced:    res.Coalesced,
	}
	if len(res.Mapping) > 0 {
		out.Mapping = make([][2]int32, 0, len(res.Mapping))
		for _, v := range res.Mapping.Domain() { // Domain is sorted
			out.Mapping = append(out.Mapping, [2]int32{int32(v), int32(res.Mapping[v])})
		}
	}
	return out
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return false
	}
	return true
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, catalog.ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, catalog.ErrBadPatch):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrExactLimit):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrNoStore):
		return http.StatusConflict
	case errors.Is(err, engine.ErrReadOnly):
		// 421 Misdirected Request: this replica cannot take the
		// mutation; the Location header (writeMutationError) names the
		// primary that can.
		return http.StatusMisdirectedRequest
	case errors.Is(err, engine.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrDeadline):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	// Handlers behind the observe shell write through the shell's
	// statusRecorder, which knows the request's trace id.
	if rec, ok := w.(*statusRecorder); ok {
		resp.TraceID = rec.traceID
	}
	writeJSON(w, status, resp)
}

// writeMutationError is writeError for the mutation routes, plus the
// follower redirect: a read-only replica answers 421 with a Location
// header pointing at the primary's copy of the same resource, so
// clients can repeat the mutation there.
func (s *server) writeMutationError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, engine.ErrReadOnly) {
		if p := s.eng.PrimaryURL(); p != "" {
			w.Header().Set("Location", p+r.URL.RequestURI())
		}
	}
	writeError(w, statusFor(err), err)
}
