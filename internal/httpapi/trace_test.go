package httpapi

// Tests for the tracing surface: ?explain=1 determinism, flight
// recorder lookup by X-Request-ID, traceparent continuation, trace ids
// in error bodies, and span-tree well-formedness under a concurrent
// match/search/patch storm (run with -race in CI).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/trace"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

// stageNames pulls the ordered stage-name sequence out of an explain
// payload.
func stageNames(stages []trace.Stage) []string {
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	return names
}

// checkSpanTree asserts the structural invariants every recorded trace
// must satisfy: sequential span ids from 1, the root first and
// parentless, parents preceding children, and every span's interval
// inside the root's.
func checkSpanTree(t *testing.T, td TraceDetailResponse) {
	t.Helper()
	if len(td.Spans) == 0 {
		t.Errorf("trace %s has no spans", td.ID)
		return
	}
	seen := map[uint64]bool{}
	for i, sp := range td.Spans {
		if sp.ID != uint64(i+1) {
			t.Errorf("trace %s span %d has id %d, want sequential %d", td.ID, i, sp.ID, i+1)
		}
		if i == 0 {
			if sp.Parent != 0 {
				t.Errorf("trace %s root span has parent %d", td.ID, sp.Parent)
			}
		} else {
			if sp.Parent >= sp.ID {
				t.Errorf("trace %s span %d parented to later span %d", td.ID, sp.ID, sp.Parent)
			}
			if !seen[sp.Parent] {
				t.Errorf("trace %s span %d has unknown parent %d", td.ID, sp.ID, sp.Parent)
			}
		}
		if sp.StartUS < 0 || sp.DurationUS < 0 {
			t.Errorf("trace %s span %d has negative offset/duration (%d, %d)", td.ID, sp.ID, sp.StartUS, sp.DurationUS)
		}
		if sp.StartUS+sp.DurationUS > td.DurationUS {
			t.Errorf("trace %s span %d ends at %dµs, past the root's %dµs",
				td.ID, sp.ID, sp.StartUS+sp.DurationUS, td.DurationUS)
		}
		seen[sp.ID] = true
	}
}

// TestExplainDeterministic pins the EXPLAIN contract: the same query
// shape yields the same ordered stage set on every run — cold cache or
// warm — so explain output is diffable across requests.
func TestExplainDeterministic(t *testing.T) {
	ts, _ := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "fig1", data)

	match := func() ([]string, string) {
		resp, body := postJSON(t, ts.URL+"/v1/match?explain=1",
			MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxcard"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match: %d %s", resp.StatusCode, body)
		}
		var out MatchResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !hex32.MatchString(out.TraceID) {
			t.Fatalf("explain trace_id %q is not a 32-hex trace id", out.TraceID)
		}
		if len(out.Explain) == 0 {
			t.Fatalf("explain=1 returned no stages: %s", body)
		}
		return stageNames(out.Explain), out.TraceID
	}
	cold, id1 := match() // first request: closure built on the fly
	warm, id2 := match() // second: fully cached
	if strings.Join(cold, ",") != strings.Join(warm, ",") {
		t.Errorf("explain stages differ cold vs warm:\n  cold: %v\n  warm: %v", cold, warm)
	}
	if id1 == id2 {
		t.Errorf("two requests share trace id %s", id1)
	}
	got := strings.Join(cold, ",")
	for _, want := range []string{"engine.match", "engine.queue", "catalog.resolve", "core.maxcard"} {
		if !strings.Contains(got, want) {
			t.Errorf("match explain %v lacks stage %s", cold, want)
		}
	}

	search := func() []string {
		resp, body := postJSON(t, ts.URL+"/v1/search?explain=1", SearchRequest{Pattern: pattern})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search: %d %s", resp.StatusCode, body)
		}
		var out SearchResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if !hex32.MatchString(out.TraceID) {
			t.Fatalf("search explain trace_id %q", out.TraceID)
		}
		return stageNames(out.Explain)
	}
	s1, s2 := search(), search()
	if strings.Join(s1, ",") != strings.Join(s2, ",") {
		t.Errorf("search explain stages differ: %v vs %v", s1, s2)
	}
	for _, want := range []string{"engine.search", "search.stage1"} {
		if !strings.Contains(strings.Join(s1, ","), want) {
			t.Errorf("search explain %v lacks stage %s", s1, want)
		}
	}

	// Without ?explain=1 the response must carry neither field.
	resp, body := postJSON(t, ts.URL+"/v1/match",
		MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxcard"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain match: %d", resp.StatusCode)
	}
	if bytes.Contains(body, []byte(`"explain"`)) || bytes.Contains(body, []byte(`"trace_id"`)) {
		t.Errorf("non-explain response leaks trace fields: %s", body)
	}
}

// TestDebugTraceLookupByRequestID is the acceptance path: make a
// request with an X-Request-ID, then fetch its span tree from the
// flight recorder by that same id.
func TestDebugTraceLookupByRequestID(t *testing.T) {
	ts, _ := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "fig1", data)

	body, resp := bodyWithHeader(t, ts.URL+"/v1/match",
		MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxsim"},
		"X-Request-ID", "rid-flight-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "rid-flight-1" {
		t.Errorf("request id not echoed: %q", got)
	}
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}

	// The recorder holds the trace once the observe shell seals it,
	// which races the response reaching the client — poll briefly.
	var detail TraceDetailResponse
	waitFor(t, 5*time.Second, func() bool {
		r, b := getBody(t, ts.URL+"/debug/traces/rid-flight-1")
		return r.StatusCode == http.StatusOK && json.Unmarshal(b, &detail) == nil
	})
	if detail.RequestID != "rid-flight-1" {
		t.Errorf("detail request_id %q", detail.RequestID)
	}
	if detail.Route != "POST /v1/match" {
		t.Errorf("detail route %q", detail.Route)
	}
	if detail.ID != tid.String() {
		t.Errorf("recorder trace id %s, response header said %s", detail.ID, tid)
	}
	checkSpanTree(t, detail)

	// The same trace must resolve by trace id too, and appear in the
	// list view.
	r, b := getBody(t, ts.URL+"/debug/traces/"+detail.ID)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("lookup by trace id: %d %s", r.StatusCode, b)
	}
	var list TraceListResponse
	r, b = getBody(t, ts.URL+"/debug/traces")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", r.StatusCode)
	}
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.ID == detail.ID {
			found = true
			if tr.RequestID != "rid-flight-1" {
				t.Errorf("summary request_id %q", tr.RequestID)
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from the list view", detail.ID)
	}

	// Unknown keys 404.
	if r, _ := getBody(t, ts.URL+"/debug/traces/no-such-trace"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace lookup: %d, want 404", r.StatusCode)
	}
}

// TestTraceparentContinuation pins W3C propagation: a request arriving
// with a traceparent keeps that trace id and records the caller's span
// as its remote parent.
func TestTraceparentContinuation(t *testing.T) {
	ts, _ := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "fig1", data)

	const wantID = "0123456789abcdef0123456789abcdef"
	incoming := "00-" + wantID + "-00000000000000ab-01"
	body, resp := bodyWithHeader(t, ts.URL+"/v1/match",
		MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxcard"},
		"traceparent", incoming)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || tid.String() != wantID {
		t.Fatalf("response traceparent %q does not continue trace %s",
			resp.Header.Get("traceparent"), wantID)
	}

	var detail TraceDetailResponse
	waitFor(t, 5*time.Second, func() bool {
		r, b := getBody(t, ts.URL+"/debug/traces/"+wantID)
		return r.StatusCode == http.StatusOK && json.Unmarshal(b, &detail) == nil
	})
	if !detail.Remote {
		t.Error("continued trace not marked remote")
	}
	if detail.ParentSpan != 0xab {
		t.Errorf("remote parent span %d, want %d", detail.ParentSpan, 0xab)
	}
	checkSpanTree(t, detail)
}

// TestTraceIDIn504Body: a deadline-exceeded request reports the trace
// id in its error body, and the trace is retrievable afterwards.
func TestTraceIDIn504Body(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{RequestTimeout: 30 * time.Millisecond}))
	t.Cleanup(ts.Close)
	register(t, ts, "path", pathGraphN(1500))

	resp, body := postJSON(t, ts.URL+"/v1/match", slowMatchBody(0))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	var e504 struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &e504); err != nil {
		t.Fatal(err)
	}
	if !hex32.MatchString(e504.TraceID) {
		t.Fatalf("504 body trace_id %q is not a trace id: %s", e504.TraceID, body)
	}
	var detail TraceDetailResponse
	waitFor(t, 5*time.Second, func() bool {
		r, b := getBody(t, ts.URL+"/debug/traces/"+e504.TraceID)
		return r.StatusCode == http.StatusOK && json.Unmarshal(b, &detail) == nil
	})
	checkSpanTree(t, detail)
}

// TestTraceIDIn429Body: a request rejected by the transport limiter
// still carries a trace id, so even shed load is attributable. Uses
// the blocker/occupier/probe choreography from TestConcurrencyLimit429.
func TestTraceIDIn429Body(t *testing.T) {
	e := engine.New(engine.Options{Workers: 1})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(NewWithOptions(e, Options{MatchConcurrency: 1}))
	t.Cleanup(ts.Close)
	register(t, ts, "path", pathGraphN(1000))

	blockerCtx, cancelBlocker := context.WithCancel(context.Background())
	defer cancelBlocker()
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		e.Match(blockerCtx, engine.Request{Pattern: cycleN(3), GraphName: "path", Algo: engine.Decide, Xi: 0.25})
	}()
	xi := 0.5
	occupierDone := make(chan struct{})
	go func() {
		defer close(occupierDone)
		postJSON(t, ts.URL+"/v1/match",
			MatchRequest{Pattern: pathGraphN(2), Graph: "path", Algo: "maxcard", Xi: &xi})
	}()
	waitFor(t, 5*time.Second, func() bool { return e.Stats().Pending >= 2 })

	probeXi := 0.75
	resp, body := postJSON(t, ts.URL+"/v1/match",
		MatchRequest{Pattern: pathGraphN(2), Graph: "path", Algo: "maxcard", Xi: &probeXi})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe status %d (%s), want 429", resp.StatusCode, body)
	}
	var e429 struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &e429); err != nil {
		t.Fatal(err)
	}
	if !hex32.MatchString(e429.TraceID) {
		t.Errorf("429 body trace_id %q is not a trace id: %s", e429.TraceID, body)
	}

	cancelBlocker()
	<-blockerDone
	<-occupierDone
}

// TestTraceStormSpanTreesWellFormed hammers the server with concurrent
// matches (half with ?explain=1), searches, live patches, and flight
// recorder reads, then verifies every recorded span tree. Run under
// -race in CI, this is the data-race gate for the tracing layer.
func TestTraceStormSpanTreesWellFormed(t *testing.T) {
	e := engine.New(engine.Options{Workers: 4})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)
	pattern, data := storeGraphs()
	register(t, ts, "fig1", data)

	post := func(url string, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	patch := func(v PatchRequest) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/graphs/fig1", bytes.NewReader(b))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	read := func(path string) error {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	const clients, iters = 6, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var err error
				switch (c + i) % 4 {
				case 0:
					err = post(ts.URL+"/v1/match?explain=1",
						MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxcard"})
				case 1:
					err = post(ts.URL+"/v1/match",
						MatchRequest{Pattern: pattern, Graph: "fig1", Algo: "maxsim"})
				case 2:
					err = post(ts.URL+"/v1/search?explain=1", SearchRequest{Pattern: pattern})
				case 3:
					err = patch(PatchRequest{
						AddNodes:   []PatchNode{{Label: fmt.Sprintf("S%d", c)}},
						SetContent: []ContentPatch{{Node: 0, Content: fmt.Sprintf("v%d-%d", c, i)}},
					})
					if err == nil {
						err = read("/debug/traces?limit=8")
					}
				}
				if err != nil {
					t.Errorf("storm client %d iter %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	var list TraceListResponse
	r, b := getBody(t, ts.URL+"/debug/traces")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", r.StatusCode)
	}
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	if list.Completed == 0 || len(list.Traces) == 0 {
		t.Fatalf("storm recorded no traces (completed=%d)", list.Completed)
	}
	checked := 0
	for _, sum := range list.Traces {
		r, b := getBody(t, ts.URL+"/debug/traces/"+sum.ID)
		if r.StatusCode != http.StatusOK {
			// Evicted between list and detail fetch under churn — fine.
			continue
		}
		var detail TraceDetailResponse
		if err := json.Unmarshal(b, &detail); err != nil {
			t.Fatal(err)
		}
		checkSpanTree(t, detail)
		checked++
	}
	if checked == 0 {
		t.Fatal("no trace details verifiable after the storm")
	}
}
