package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"graphmatch/internal/core"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	e := engine.New(engine.Options{Workers: 4})
	t.Cleanup(e.Close)
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)
	return ts, e
}

// storeGraphs is the paper's Figure 1 instance in wire form.
func storeGraphs() (pattern, data *graph.Graph) {
	pattern = graph.FromEdgeList(
		[]string{"A", "books", "audio", "textbooks", "abooks", "albums"},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 4}, {2, 5}},
	)
	data = graph.FromEdgeList(
		[]string{"A", "books", "sports", "audio", "categories", "textbooks",
			"school", "arts", "abooks", "booksets", "DVDs", "albums"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 9}, {1, 5}, {4, 6},
			{4, 7}, {3, 8}, {3, 10}, {3, 11}, {5, 6}},
	)
	return pattern, data
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func register(t *testing.T, ts *httptest.Server, name string, g *graph.Graph) {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/graphs", RegisterRequest{Name: name, Graph: g})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %q: status %d, body %s", name, resp.StatusCode, body)
	}
}

func TestRegisterAndList(t *testing.T) {
	ts, _ := newTestServer(t)
	_, data := storeGraphs()
	register(t, ts, "store", data)

	// Duplicate → 409.
	resp, _ := postJSON(t, ts.URL+"/v1/graphs", RegisterRequest{Name: "store", Graph: data})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}
	// Missing pieces → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/graphs", RegisterRequest{Name: "", Graph: data})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty name: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/graphs", RegisterRequest{Name: "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing graph: status %d, want 400", resp.StatusCode)
	}

	listResp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var listed map[string][]string
	if err := json.NewDecoder(listResp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if got := listed["graphs"]; len(got) != 1 || got[0] != "store" {
		t.Fatalf("graphs = %v", got)
	}
}

func TestMatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "store", data)

	xi := 0.9
	resp, body := postJSON(t, ts.URL+"/v1/match", MatchRequest{
		Pattern: pattern, Graph: "store", Algo: "maxcard", Xi: &xi,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}

	// The wire result must equal a direct in-process run.
	in := core.NewInstance(pattern, data, simmatrix.NewLabelEquality(pattern, data), xi)
	want := in.CompMaxCard()
	if mr.Matched != len(want) || mr.PatternNodes != pattern.NumNodes() {
		t.Fatalf("matched %d/%d, want %d/%d", mr.Matched, mr.PatternNodes, len(want), pattern.NumNodes())
	}
	if mr.QualCard != in.QualCard(want) {
		t.Fatalf("qual_card %v, want %v", mr.QualCard, in.QualCard(want))
	}
	for _, pair := range mr.Mapping {
		if want[graph.NodeID(pair[0])] != graph.NodeID(pair[1]) {
			t.Fatalf("wire mapping %v disagrees with direct run %v", mr.Mapping, want)
		}
	}

	// Unknown graph → 404; bad algorithm → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/match", MatchRequest{Pattern: pattern, Graph: "nope", Algo: "maxcard"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/match", MatchRequest{Pattern: pattern, Graph: "store", Algo: "subiso"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad algo: status %d, want 400", resp.StatusCode)
	}
	badXi := 1.5
	resp, _ = postJSON(t, ts.URL+"/v1/match", MatchRequest{Pattern: pattern, Graph: "store", Algo: "maxcard", Xi: &badXi})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("xi out of range: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/match", MatchRequest{Pattern: pattern, Graph: "store", Algo: "maxcard", Sim: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sim kind: status %d, want 400", resp.StatusCode)
	}
}

// TestEndToEndConcurrentBatches is the PR's acceptance scenario over
// the real HTTP stack: one registered graph, several concurrent batch
// requests, closure-cache hits, and per-algorithm agreement with
// direct core runs.
func TestEndToEndConcurrentBatches(t *testing.T) {
	ts, e := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "store", data)

	xi := 0.9
	algos := []string{"maxcard", "maxcard11", "maxsim", "maxsim11", "decide", "simulation"}
	batch := BatchRequest{}
	for _, a := range algos {
		batch.Requests = append(batch.Requests, MatchRequest{
			Pattern: pattern, Graph: "store", Algo: a, Xi: &xi,
		})
	}

	const clients = 4
	var wg sync.WaitGroup
	responses := make([]BatchResponse, clients)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, err := json.Marshal(batch)
			if err != nil {
				errCh <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/match/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			errCh <- json.NewDecoder(resp.Body).Decode(&responses[c])
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every client got per-algorithm results identical to direct runs.
	in := core.NewInstance(pattern, data, simmatrix.NewLabelEquality(pattern, data), xi)
	direct := map[string]core.Mapping{
		"maxcard":   in.CompMaxCard(),
		"maxcard11": in.CompMaxCard11(),
		"maxsim":    in.CompMaxSim(),
		"maxsim11":  in.CompMaxSim11(),
	}
	for c, br := range responses {
		if len(br.Results) != len(algos) {
			t.Fatalf("client %d: %d results, want %d", c, len(br.Results), len(algos))
		}
		for _, res := range br.Results {
			if res.Error != "" {
				t.Fatalf("client %d %s: %s", c, res.Algo, res.Error)
			}
			want, ok := direct[res.Algo]
			if !ok {
				continue // decide/simulation verdicts checked below
			}
			if res.Matched != len(want) {
				t.Errorf("client %d %s: matched %d, direct %d", c, res.Algo, res.Matched, len(want))
			}
			for _, pair := range res.Mapping {
				if want[graph.NodeID(pair[0])] != graph.NodeID(pair[1]) {
					t.Errorf("client %d %s: pair %v disagrees with direct run", c, res.Algo, pair)
				}
			}
		}
		_, holds := in.Decide()
		for _, res := range br.Results {
			if res.Algo == "decide" && res.Holds != holds {
				t.Errorf("client %d decide: holds %v, direct %v", c, res.Holds, holds)
			}
		}
	}

	// The closure was computed exactly once (at registration) and every
	// closure-consuming request hit the shared cache.
	var stats StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Catalog.Misses != 1 {
		t.Errorf("closure built %d times, want exactly 1", stats.Catalog.Misses)
	}
	if stats.Catalog.Hits == 0 {
		t.Errorf("closure-cache hits = 0, want > 0; stats %+v", stats.Catalog)
	}
	if stats.Engine.Requests < uint64(clients*len(algos)) {
		t.Errorf("engine saw %d requests, want ≥ %d", stats.Engine.Requests, clients*len(algos))
	}
	// Identical concurrent batches are prime coalescing fodder; the
	// counter is timing-dependent, so only log it.
	t.Logf("engine stats: %+v", stats.Engine)
	t.Logf("catalog stats: %+v (hit rate %.0f%%)", stats.Catalog.Stats, stats.Catalog.HitRate*100)
	_ = e
}

func TestHealthAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Workers < 1 {
		t.Fatalf("stats report %d workers", stats.Engine.Workers)
	}
}

func TestBadJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/v1/match/batch", "application/json", bytes.NewReader([]byte(`{"requests": []}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp2.StatusCode)
	}
}

func TestRemoveGraph(t *testing.T) {
	ts, eng := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "store", data)

	// Unknown name → 404.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/missing", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: status %d, want 404", resp.StatusCode)
	}

	// Existing name → 200 with an acknowledgement, and the graph is gone.
	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/store", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack RemoveResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ack.Removed || ack.Name != "store" {
		t.Fatalf("delete: status %d, ack %+v", resp.StatusCode, ack)
	}
	if got := eng.Catalog().Len(); got != 0 {
		t.Fatalf("catalog still holds %d graphs after delete", got)
	}

	// A match against the removed graph → 404.
	resp, body := postJSON(t, ts.URL+"/v1/match", MatchRequest{
		Pattern: pattern, Graph: "store", Algo: "maxcard",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("match after delete: status %d (%s), want 404", resp.StatusCode, body)
	}

	// The name is free for re-registration.
	register(t, ts, "store", data)
}

func TestStatsReportTier(t *testing.T) {
	ts, _ := newTestServer(t)
	_, data := storeGraphs()
	register(t, ts, "store", data)
	pattern, _ := storeGraphs()
	if resp, body := postJSON(t, ts.URL+"/v1/match", MatchRequest{
		Pattern: pattern, Graph: "store", Algo: "maxcard",
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("match: status %d (%s)", resp.StatusCode, body)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Catalog.TierPolicy != "auto" {
		t.Fatalf("stats tier policy = %q, want auto", st.Catalog.TierPolicy)
	}
	if st.Catalog.ResidentIndexes != 1 || st.Catalog.ResidentDense != 1 {
		t.Fatalf("stats resident indexes %d (dense %d), want 1/1 after a match on a small graph",
			st.Catalog.ResidentIndexes, st.Catalog.ResidentDense)
	}
}

// TestListGraphsSorted is the listing-determinism regression: names
// come back sorted regardless of registration order.
func TestListGraphsSorted(t *testing.T) {
	ts, _ := newTestServer(t)
	_, data := storeGraphs()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		register(t, ts, name, data)
	}
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	got := list["graphs"]
	if len(got) != len(want) {
		t.Fatalf("graphs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("graphs = %v, want %v (sorted)", got, want)
		}
	}
}

// TestGraphDetail exercises GET /v1/graphs/{name}: size, degree stats
// and resident-closure accounting for a registered graph, 404 for an
// unknown one.
func TestGraphDetail(t *testing.T) {
	ts, _ := newTestServer(t)
	_, data := storeGraphs()
	register(t, ts, "store", data)

	resp, err := http.Get(ts.URL + "/v1/graphs/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status %d", resp.StatusCode)
	}
	var detail GraphDetailResponse
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	if detail.Name != "store" || detail.Nodes != data.NumNodes() || detail.Edges != data.NumEdges() {
		t.Fatalf("detail = %+v", detail)
	}
	if detail.ResidentClosures != 1 || detail.ClosureBytes <= 0 {
		t.Fatalf("closure accounting: %+v", detail)
	}
	if detail.MaxDeg <= 0 || detail.AvgDeg <= 0 {
		t.Fatalf("degree stats: %+v", detail)
	}

	missing, err := http.Get(ts.URL + "/v1/graphs/missing")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing detail status %d, want 404", missing.StatusCode)
	}
}

// TestSearchEndpoint drives POST /v1/search over a small catalog: the
// self-graph ranks first, ranks are 1-based and deterministic, and the
// stats report the catalog size.
func TestSearchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "store", data)
	// A second graph with none of the pattern's labels ranks below.
	other := graph.FromEdgeList([]string{"x", "y", "z"}, [][2]int{{0, 1}, {1, 2}})
	register(t, ts, "other", other)

	resp, body := postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pattern: pattern, Algo: "maxcard", K: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d, body %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Algo != "maxcard" || out.K != 2 || out.PatternNodes != pattern.NumNodes() {
		t.Fatalf("response header: %+v", out)
	}
	if len(out.Hits) != 2 || out.Hits[0].Graph != "store" || out.Hits[0].Rank != 1 {
		t.Fatalf("hits = %+v", out.Hits)
	}
	if out.Hits[0].QualCard <= out.Hits[1].QualCard || out.Hits[0].Score != out.Hits[0].QualCard {
		t.Fatalf("ranking metric: %+v", out.Hits)
	}
	if out.Stats.Graphs != 2 || out.Stats.Matched != 2 {
		t.Fatalf("stats = %+v", out.Stats)
	}

	// Re-running returns the identical ranking.
	_, body2 := postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pattern: pattern, Algo: "maxcard", K: 2,
	})
	var out2 SearchResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if len(out2.Hits) != len(out.Hits) || out2.Hits[0].Graph != out.Hits[0].Graph || out2.Hits[1].Graph != out.Hits[1].Graph {
		t.Fatalf("ranking changed across runs: %+v then %+v", out.Hits, out2.Hits)
	}

	// min_resemblance prunes the unrelated graph; explicit 0 keeps it.
	thr := 0.5
	_, body3 := postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pattern: pattern, Algo: "maxcard", K: 2, MinResemblance: &thr,
	})
	var out3 SearchResponse
	if err := json.Unmarshal(body3, &out3); err != nil {
		t.Fatal(err)
	}
	if out3.Stats.Pruned != 1 || len(out3.Hits) != 1 || out3.Hits[0].Graph != "store" {
		t.Fatalf("pruned search: hits %+v stats %+v", out3.Hits, out3.Stats)
	}
	zero := 0.0
	_, body4 := postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pattern: pattern, Algo: "maxcard", K: 2, MinResemblance: &zero,
	})
	var out4 SearchResponse
	if err := json.Unmarshal(body4, &out4); err != nil {
		t.Fatal(err)
	}
	if out4.Stats.Pruned != 0 || len(out4.Hits) != 2 {
		t.Fatalf("explicit-zero search: hits %+v stats %+v", out4.Hits, out4.Stats)
	}

	// Brute force matches everything and agrees on the winner.
	_, body5 := postJSON(t, ts.URL+"/v1/search", SearchRequest{
		Pattern: pattern, Algo: "maxcard", K: 2, NoPrefilter: true,
	})
	var out5 SearchResponse
	if err := json.Unmarshal(body5, &out5); err != nil {
		t.Fatal(err)
	}
	if out5.Stats.Matched != 2 || out5.Hits[0].Graph != "store" {
		t.Fatalf("brute search: %+v", out5)
	}
}

// TestSearchEndpointValidation pins the 400s.
func TestSearchEndpointValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	pattern, data := storeGraphs()
	register(t, ts, "store", data)

	for name, req := range map[string]SearchRequest{
		"missing pattern": {},
		"bad algo":        {Pattern: pattern, Algo: "bogus"},
		"bad sim":         {Pattern: pattern, Sim: "bogus"},
		"negative k":      {Pattern: pattern, K: -1},
		"bad cap":         {Pattern: pattern, MaxCandidates: -2},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/search", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, resp.StatusCode, body)
		}
	}
	bad := 1.5
	resp, _ := postJSON(t, ts.URL+"/v1/search", SearchRequest{Pattern: pattern, MinResemblance: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("min_resemblance 1.5: status %d", resp.StatusCode)
	}
	badXi := -0.5
	resp, _ = postJSON(t, ts.URL+"/v1/search", SearchRequest{Pattern: pattern, Xi: &badXi})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("xi -0.5: status %d", resp.StatusCode)
	}
}

// TestSearchLargeCatalogDeterministic is the acceptance check for the
// search endpoint: over a ≥100-graph catalog, POST /v1/search returns
// the same top-k, in the same order, on every run, and the pruning
// prefilter skips most of the catalog without changing the ranking.
func TestSearchLargeCatalogDeterministic(t *testing.T) {
	ts, _ := newTestServer(t)
	// 120 chain graphs in 12 content families of 10 members each;
	// members of a family share most of their text, so a query built
	// from one family ranks its members and prunes the rest.
	const families, members = 12, 10
	var queryPattern *graph.Graph
	for f := 0; f < families; f++ {
		for m := 0; m < members; m++ {
			g := graph.New(6)
			for v := 0; v < 6; v++ {
				// Family-specific vocabulary: every 4-word shingle
				// contains family words, so cross-family containment is
				// 0 and the prefilter can separate the families.
				var content bytes.Buffer
				for w := 0; w < 10; w++ {
					fmt.Fprintf(&content, "family%dnode%dword%d ", f, v, w)
				}
				fmt.Fprintf(&content, "family%dvariant%d", f, m%3)
				g.AddNodeFull(graph.Node{
					Label:   fmt.Sprintf("n%d", v),
					Weight:  1,
					Content: content.String(),
				})
				if v > 0 {
					g.AddEdge(graph.NodeID(v-1), graph.NodeID(v))
				}
			}
			g.Finish()
			register(t, ts, fmt.Sprintf("f%02d-m%02d", f, m), g)
			if f == 3 && m == 0 {
				queryPattern = g.Clone()
			}
		}
	}

	run := func(req SearchRequest) SearchResponse {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/search", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d, body %s", resp.StatusCode, body)
		}
		var out SearchResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	names := func(out SearchResponse) []string {
		ns := make([]string, len(out.Hits))
		for i, h := range out.Hits {
			ns[i] = h.Graph
		}
		return ns
	}

	thr := 0.5
	pruned := SearchRequest{Pattern: queryPattern, Algo: "maxsim", Sim: "content", K: 8, MinResemblance: &thr}
	first := run(pruned)
	if first.Stats.Graphs != families*members {
		t.Fatalf("catalog size %d, want %d", first.Stats.Graphs, families*members)
	}
	if len(first.Hits) != 8 || first.Hits[0].Graph != "f03-m00" {
		t.Fatalf("hits = %v", names(first))
	}
	for _, h := range first.Hits {
		if h.Graph[:3] != "f03" {
			t.Fatalf("foreign family in top-k: %v", names(first))
		}
	}
	if first.Stats.Pruned < families*members/2 {
		t.Fatalf("prefilter pruned only %d of %d", first.Stats.Pruned, families*members)
	}
	for i := 0; i < 3; i++ {
		if got := names(run(pruned)); !reflect.DeepEqual(got, names(first)) {
			t.Fatalf("run %d: ranking %v != %v", i, got, names(first))
		}
	}
	// The brute-force scan agrees on the same top-k.
	brute := run(SearchRequest{Pattern: queryPattern, Algo: "maxsim", Sim: "content", K: 8, NoPrefilter: true})
	if brute.Stats.Matched != families*members {
		t.Fatalf("brute matched %d", brute.Stats.Matched)
	}
	if !reflect.DeepEqual(names(brute), names(first)) {
		t.Fatalf("brute %v != prefiltered %v", names(brute), names(first))
	}
}

// doJSON issues a request with a JSON body and an arbitrary method
// (PATCH, DELETE with body, ...).
func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestPatchGraphEndpoint drives a live mutation over HTTP: the patch
// changes match results immediately, without re-registering.
func TestPatchGraphEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// Pattern A→C matches data A→B→C via the path A→B→C (p-hom maps
	// pattern edges to paths), decided exactly.
	pattern := graph.FromEdgeList([]string{"A", "C"}, [][2]int{{0, 1}})
	data := graph.FromEdgeList([]string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}})
	register(t, ts, "chain", data)

	match := func() MatchResponse {
		resp, body := postJSON(t, ts.URL+"/v1/match", MatchRequest{
			Pattern: pattern, Graph: "chain", Algo: "decide",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match: %d %s", resp.StatusCode, body)
		}
		var out MatchResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if before := match(); !before.Holds {
		t.Fatalf("pattern should hold before the patch: %+v", before)
	}

	// Cut B→C: the path from A to any C-labelled node is gone.
	resp, body := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/chain", PatchRequest{
		DelEdges: [][2]int32{{1, 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d %s", resp.StatusCode, body)
	}
	var pr PatchResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Nodes != 3 || pr.Edges != 1 {
		t.Fatalf("patch response: %+v", pr)
	}
	if after := match(); after.Holds {
		t.Fatalf("pattern still holds after cutting B→C: %+v", after)
	}

	// Patch in a new C-labelled page linked straight from A: the
	// pattern holds again through the added node.
	resp, body = doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/chain", PatchRequest{
		AddNodes: []PatchNode{{Label: "C", Weight: 1}},
		AddEdges: [][2]int32{{0, 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-add patch: %d %s", resp.StatusCode, body)
	}
	if after := match(); !after.Holds {
		t.Fatalf("pattern should hold again through the added node: %+v", after)
	}
}

func TestPatchGraphEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	_, data := storeGraphs()
	register(t, ts, "store", data)

	cases := []struct {
		name   string
		target string
		req    PatchRequest
		status int
	}{
		{"empty patch", "store", PatchRequest{}, http.StatusBadRequest},
		{"unknown graph", "nope", PatchRequest{DelEdges: [][2]int32{{0, 1}}}, http.StatusNotFound},
		{"absent edge", "store", PatchRequest{DelEdges: [][2]int32{{11, 0}}}, http.StatusBadRequest},
		{"node out of range", "store", PatchRequest{AddEdges: [][2]int32{{0, 99}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, http.MethodPatch, ts.URL+"/v1/graphs/"+tc.target, tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (want %d), body %s", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

// TestSnapshotEndpoint exercises POST /v1/admin/snapshot against a
// store-backed engine, and the 409 on a store-less one.
func TestSnapshotEndpoint(t *testing.T) {
	e, err := engine.Open(engine.Options{Workers: 2, StorePath: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ts := httptest.NewServer(New(e))
	t.Cleanup(ts.Close)

	_, data := storeGraphs()
	register(t, ts, "store", data)

	resp, body := postJSON(t, ts.URL+"/v1/admin/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, body)
	}
	var sr SnapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Store.Snapshots != 1 || sr.Store.SnapshotSeq == 0 {
		t.Fatalf("snapshot stats: %+v", sr.Store)
	}

	// /v1/stats now reports the store section.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil || stats.Store.LastSeq == 0 {
		t.Fatalf("stats missing store section: %+v", stats.Store)
	}

	// Without a store the endpoint conflicts.
	ts2, _ := newTestServer(t)
	resp, body = postJSON(t, ts2.URL+"/v1/admin/snapshot", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot without store: %d %s", resp.StatusCode, body)
	}
}
