package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func trackerFor(shards []ShardConfig) *healthTracker {
	return newHealthTracker(shards, http.DefaultClient, time.Hour)
}

func setState(h *healthTracker, url string, ready bool, lag uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.states[url]
	st.probed = true
	st.ready = ready
	st.lag = lag
	st.checked = time.Now()
}

// Unprobed endpoints are optimistically eligible: a cold router must
// route its first requests instead of failing them.
func TestReadOrderUnprobedOptimistic(t *testing.T) {
	h := trackerFor([]ShardConfig{{Name: "s0", Endpoints: []string{"http://p", "http://r"}}})
	order := h.readOrder(0, 0)
	if len(order) != 2 {
		t.Fatalf("order %v, want both endpoints", order)
	}
}

// The staleness bound excludes lagging replicas from the eligible set
// but keeps them as ordered fallbacks, and never returns empty.
func TestReadOrderLagBound(t *testing.T) {
	h := trackerFor([]ShardConfig{{Name: "s0", Endpoints: []string{"http://p", "http://r"}}})
	setState(h, "http://p", true, 0)
	setState(h, "http://r", true, 5)

	order := h.readOrder(0, 0) // maxLag 0: replica 5 ops behind is out
	if order[0] != "http://p" || order[1] != "http://r" {
		t.Fatalf("maxLag=0 order %v, want primary first, lagging replica fallback", order)
	}
	// With the bound relaxed both are eligible and rotation alternates.
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		seen[h.readOrder(0, 10)[0]] = true
	}
	if !seen["http://p"] || !seen["http://r"] {
		t.Fatalf("round-robin never rotated: %v", seen)
	}
}

// A shard whose every probe failed still yields its endpoints — the
// request must go out and surface the real error.
func TestReadOrderAllDown(t *testing.T) {
	h := trackerFor([]ShardConfig{{Name: "s0", Endpoints: []string{"http://p", "http://r"}}})
	setState(h, "http://p", false, 0)
	setState(h, "http://r", false, 0)
	if order := h.readOrder(0, 0); len(order) != 2 {
		t.Fatalf("all-down order %v, want both as fallbacks", order)
	}
}

// probeAll hits GET /readyz, records readiness and the replication
// lag header, and feeds the observe hook.
func TestProbeReadsLagHeader(t *testing.T) {
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		w.Header().Set("X-Replication-Lag", "3")
		w.WriteHeader(http.StatusOK)
	}))
	defer ready.Close()
	notReady := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer notReady.Close()

	h := newHealthTracker([]ShardConfig{
		{Name: "s0", Endpoints: []string{ready.URL, notReady.URL}},
	}, http.DefaultClient, time.Second)
	type obs struct {
		ready bool
		lag   uint64
	}
	results := make(map[string]obs)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	h.observe = func(url string, ok bool, lag uint64) {
		<-mu
		results[url] = obs{ok, lag}
		mu <- struct{}{}
	}
	h.probeAll()

	snap := h.snapshot(0)
	if !snap[0].Ready || snap[0].Lag != 3 || !snap[0].Primary {
		t.Fatalf("ready endpoint snapshot %+v", snap[0])
	}
	if snap[1].Ready || snap[1].Error == "" || snap[1].Primary {
		t.Fatalf("not-ready endpoint snapshot %+v", snap[1])
	}
	<-mu
	if r := results[ready.URL]; !r.ready || r.lag != 3 {
		t.Fatalf("observe hook saw %+v for the ready endpoint", r)
	}
}
