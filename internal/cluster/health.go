package cluster

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DefaultProbeInterval is how often the router re-probes every shard
// endpoint when Options.ProbeInterval is left zero.
const DefaultProbeInterval = 500 * time.Millisecond

// EndpointHealth is one endpoint's last probe result, as reported on
// GET /v1/cluster.
type EndpointHealth struct {
	URL     string `json:"url"`
	Ready   bool   `json:"ready"`
	Lag     uint64 `json:"lag"`
	Error   string `json:"error,omitempty"`
	Probed  bool   `json:"probed"`
	AgeMS   int64  `json:"age_ms,omitempty"`
	Primary bool   `json:"primary"`
}

// endpointState is the tracker's mutable view of one endpoint.
type endpointState struct {
	probed  bool
	ready   bool
	lag     uint64
	err     string
	checked time.Time
}

// healthTracker polls every shard endpoint's GET /readyz on a fixed
// interval and answers the router's read-balancing question: which
// replicas of shard i may serve this read? An endpoint is eligible
// when its last probe was 200 with X-Replication-Lag within the
// configured bound — or when it has never been probed yet (optimistic,
// so a cold router routes immediately instead of failing its first
// requests). Reads rotate round-robin over the eligible endpoints;
// ineligible ones are kept as ordered fallbacks so a shard whose
// probes all fail still gets attempted (and the real error surfaces).
type healthTracker struct {
	shards   []ShardConfig
	client   *http.Client
	interval time.Duration

	mu     sync.Mutex
	states map[string]*endpointState
	rr     []uint64 // per-shard round-robin cursor

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// observe, when non-nil, receives every probe result (the router
	// hangs its endpoint gauges here).
	observe func(url string, ready bool, lag uint64)
}

func newHealthTracker(shards []ShardConfig, client *http.Client, interval time.Duration) *healthTracker {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	h := &healthTracker{
		shards:   shards,
		client:   client,
		interval: interval,
		states:   make(map[string]*endpointState),
		rr:       make([]uint64, len(shards)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, s := range shards {
		for _, ep := range s.Endpoints {
			h.states[ep] = &endpointState{}
		}
	}
	return h
}

// start launches the probe loop; an immediate first round runs before
// the first tick so the tracker is warm within one probe round-trip.
func (h *healthTracker) start() {
	go func() {
		defer close(h.done)
		h.probeAll()
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.probeAll()
			}
		}
	}()
}

func (h *healthTracker) close() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// probeAll probes every endpoint concurrently and folds the results
// into the state table.
func (h *healthTracker) probeAll() {
	var wg sync.WaitGroup
	for _, s := range h.shards {
		for _, ep := range s.Endpoints {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				ready, lag, err := h.probe(url)
				h.mu.Lock()
				st := h.states[url]
				st.probed = true
				st.ready = ready
				st.lag = lag
				st.err = err
				st.checked = time.Now()
				h.mu.Unlock()
				if h.observe != nil {
					h.observe(url, ready, lag)
				}
			}(ep)
		}
	}
	wg.Wait()
}

// probe issues one GET /readyz. A 200 means ready; the returned lag is
// the X-Replication-Lag header (0 when absent, i.e. a primary).
func (h *healthTracker) probe(url string) (ready bool, lag uint64, errStr string) {
	ctx, cancel := context.WithTimeout(context.Background(), h.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false, 0, err.Error()
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false, 0, err.Error()
	}
	defer resp.Body.Close()
	if v := resp.Header.Get("X-Replication-Lag"); v != "" {
		lag, _ = strconv.ParseUint(v, 10, 64)
	}
	if resp.StatusCode != http.StatusOK {
		return false, lag, resp.Status
	}
	return true, lag, ""
}

// probeTimeout bounds one probe: the interval itself, clamped to
// [100ms, 2s] so a tight interval still completes a TCP handshake and
// a lazy one cannot hang the loop.
func (h *healthTracker) probeTimeout() time.Duration {
	d := h.interval
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// readOrder returns shard i's endpoints in the order a read should try
// them: eligible endpoints first (rotated round-robin per shard), then
// the ineligible ones as fallbacks. Never empty.
func (h *healthTracker) readOrder(shard int, maxLag uint64) []string {
	eps := h.shards[shard].Endpoints
	h.mu.Lock()
	defer h.mu.Unlock()
	eligible := make([]string, 0, len(eps))
	var rest []string
	for _, ep := range eps {
		st := h.states[ep]
		if !st.probed || (st.ready && st.lag <= maxLag) {
			eligible = append(eligible, ep)
		} else {
			rest = append(rest, ep)
		}
	}
	if len(eligible) == 0 {
		return rest
	}
	h.rr[shard]++
	rot := int(h.rr[shard]) % len(eligible)
	out := make([]string, 0, len(eps))
	out = append(out, eligible[rot:]...)
	out = append(out, eligible[:rot]...)
	return append(out, rest...)
}

// snapshot returns the current state of every endpoint of shard i.
func (h *healthTracker) snapshot(shard int) []EndpointHealth {
	eps := h.shards[shard].Endpoints
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]EndpointHealth, 0, len(eps))
	for j, ep := range eps {
		st := h.states[ep]
		eh := EndpointHealth{
			URL:     ep,
			Ready:   st.ready,
			Lag:     st.lag,
			Error:   st.err,
			Probed:  st.probed,
			Primary: j == 0,
		}
		if st.probed {
			eh.AgeMS = time.Since(st.checked).Milliseconds()
		}
		out = append(out, eh)
	}
	return out
}
