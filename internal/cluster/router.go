package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/httpapi"
	"graphmatch/internal/metrics"
	"graphmatch/internal/search"
	"graphmatch/internal/trace"
)

// routerMaxBody bounds forwarded request bodies, matching the shard
// transport's own limit.
const routerMaxBody = 64 << 20

// RouterOptions configures the stateless router.
type RouterOptions struct {
	// MaxLag bounds how many ops behind the primary a replica may be
	// and still serve single-graph reads and search fan-out hops
	// (phomd -route-max-lag). 0 — the default — routes reads only to
	// replicas that were at the primary's head at their last probe.
	MaxLag uint64
	// ProbeInterval is the /readyz health-probe period per endpoint;
	// 0 applies DefaultProbeInterval.
	ProbeInterval time.Duration
	// RequestTimeout bounds each routed request's wall time; per-shard
	// hop deadlines are derived from it (a slice of the remaining
	// budget is reserved for the merge). 0 means no deadline.
	RequestTimeout time.Duration
	// Client issues every shard hop and probe; nil builds a pooled
	// default. Tests inject fault transports here.
	Client *http.Client
	// AccessLog, when non-nil, receives one line per routed request.
	AccessLog *log.Logger
	// NoTrace disables the router's flight recorder; TraceCapacity and
	// TraceSlowThreshold size it (0 keeps the trace package defaults).
	NoTrace            bool
	TraceCapacity      int
	TraceSlowThreshold time.Duration
}

// Router is the stateless scatter-gather front of a phomd shard
// fleet. It owns no catalog: every request is resolved against the
// ring and forwarded — mutations to the owning shard's primary
// (following one 421 Misdirected redirect), single-graph reads to a
// healthy replica of the owning shard (one retry on connection
// failure or 5xx), and catalog-wide searches to every shard, whose
// local top-k responses fold through search.Better into an exact
// global top-k. Run it with phomd -router -shards <spec>.
type Router struct {
	ring   *Ring
	opts   RouterOptions
	client *http.Client
	health *healthTracker
	tracer *trace.Recorder
	reg    *metrics.Registry
	mux    *http.ServeMux

	mRequests     *metrics.CounterVec
	mLatency      *metrics.HistogramVec
	mShardReqs    *metrics.CounterVec
	mShardSeconds *metrics.HistogramVec
	mShardErrors  *metrics.CounterVec
	mRetries      *metrics.CounterVec
	mRedirects    *metrics.Counter
	mPartial      *metrics.Counter
	mFanout       *metrics.Histogram
	mEndpointUp   *metrics.GaugeVec
	mEndpointLag  *metrics.GaugeVec
	mInFlight     *metrics.Gauge
}

// NewRouter builds a router over the given ring configuration and
// starts its health prober. Callers must Close it.
func NewRouter(cfg Config, opts RouterOptions) (*Router, error) {
	ring, err := NewRing(cfg)
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		client = &http.Client{Transport: tr}
	}
	rt := &Router{
		ring:   ring,
		opts:   opts,
		client: client,
		reg:    metrics.NewRegistry(),
	}
	if !opts.NoTrace {
		rt.tracer = trace.NewRecorder(opts.TraceCapacity, opts.TraceSlowThreshold)
	}
	rt.initMetrics()
	rt.health = newHealthTracker(ring.Config().Shards, client, opts.ProbeInterval)
	rt.health.observe = func(url string, ready bool, lag uint64) {
		up := 0.0
		if ready {
			up = 1
		}
		rt.mEndpointUp.With(url).Set(up)
		rt.mEndpointLag.With(url).Set(float64(lag))
	}
	rt.initMux()
	rt.health.start()
	return rt, nil
}

// Close stops the health prober. In-flight requests finish normally.
func (rt *Router) Close() { rt.health.close() }

// Registry exposes the router's phomd_router_* metric families.
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// Tracer exposes the router's flight recorder (nil with NoTrace).
func (rt *Router) Tracer() *trace.Recorder { return rt.tracer }

// Ring exposes the placement the router serves from.
func (rt *Router) Ring() *Ring { return rt.ring }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) initMetrics() {
	rt.mRequests = rt.reg.CounterVec("phomd_router_requests_total",
		"Routed requests by route, method and status code.", "route", "method", "code")
	rt.mLatency = rt.reg.HistogramVec("phomd_router_request_seconds",
		"End-to-end routed request latency by route.", nil, "route")
	rt.mShardReqs = rt.reg.CounterVec("phomd_router_shard_requests_total",
		"Shard hops by shard and status code (code \"error\" = transport failure).", "shard", "code")
	rt.mShardSeconds = rt.reg.HistogramVec("phomd_router_shard_seconds",
		"Shard hop latency by shard.", nil, "shard")
	rt.mShardErrors = rt.reg.CounterVec("phomd_router_shard_errors_total",
		"Shard hops that failed (transport error or 5xx).", "shard")
	rt.mRetries = rt.reg.CounterVec("phomd_router_retries_total",
		"Idempotent reads retried against another replica.", "shard")
	rt.mRedirects = rt.reg.Counter("phomd_router_redirects_total",
		"Mutations re-sent after a 421 Misdirected redirect.")
	rt.mPartial = rt.reg.Counter("phomd_router_partial_total",
		"Scatter-gather responses served incomplete under ?partial=1.")
	rt.mFanout = rt.reg.Histogram("phomd_router_fanout_shards",
		"Shards contacted per scatter-gather request.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
	rt.mEndpointUp = rt.reg.GaugeVec("phomd_router_endpoint_up",
		"1 when the endpoint's last /readyz probe succeeded.", "endpoint")
	rt.mEndpointLag = rt.reg.GaugeVec("phomd_router_endpoint_lag",
		"X-Replication-Lag reported by the endpoint's last probe.", "endpoint")
	rt.mInFlight = rt.reg.Gauge("phomd_router_in_flight",
		"Requests currently inside the router.")
}

func (rt *Router) initMux() {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, rt.observe(pattern, h))
	}
	handle("POST /v1/graphs", rt.handleRegister)
	handle("GET /v1/graphs", rt.handleList)
	handle("GET /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardRead(w, r, r.PathValue("name"), nil)
	})
	handle("PATCH /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardMutation(w, r, r.PathValue("name"))
	})
	handle("DELETE /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		rt.forwardMutation(w, r, r.PathValue("name"))
	})
	handle("POST /v1/match", rt.handleMatch)
	handle("POST /v1/match/batch", rt.handleBatch)
	handle("POST /v1/search", rt.handleSearch)
	handle("POST /v1/admin/snapshot", rt.handleSnapshot)
	handle("GET /v1/stats", rt.handleStats)
	handle("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", rt.readyz)
	mux.Handle("GET /metrics", rt.reg.Handler())
	// The flight recorder stays outside the observe shell, like on the
	// shards: reading traces must not generate traces.
	mux.HandleFunc("GET /debug/traces", rt.debugTraces)
	mux.HandleFunc("GET /debug/traces/{id}", rt.debugTrace)
	rt.mux = mux
}

// observe is the router's transport shell: request id, root span,
// metrics, optional deadline, access log — a stateless sibling of the
// shard-side httpapi shell.
func (rt *Router) observe(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		sp := rt.startTrace(r, route, id, start)
		if sp.Active() {
			rec.traceID = sp.TraceID().String()
			rec.Header().Set("traceparent", sp.Traceparent())
		}
		rt.mInFlight.Inc()
		defer func() {
			rt.mInFlight.Dec()
			elapsed := time.Since(start)
			if sp.Active() {
				sp.SetInt("http_status", int64(rec.status))
				sp.EndAfter(elapsed)
			}
			rt.mRequests.With(route, r.Method, strconv.Itoa(rec.status)).Inc()
			rt.mLatency.With(route).Observe(elapsed.Seconds())
			if lg := rt.opts.AccessLog; lg != nil {
				lg.Printf("req_id=%s trace_id=%s method=%s path=%s status=%d dur=%s",
					id, rec.traceID, r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond))
			}
		}()

		ctx := r.Context()
		if sp.Active() {
			ctx = trace.ContextWithSpan(ctx, sp)
		}
		if rt.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, rt.opts.RequestTimeout)
			defer cancel()
		}
		h(rec, r.WithContext(ctx))
	})
}

func (rt *Router) startTrace(r *http.Request, route, id string, start time.Time) trace.Span {
	if rt.tracer == nil {
		return trace.Span{}
	}
	if h := r.Header.Get("traceparent"); h != "" {
		if tid, parent, ok := trace.ParseTraceparent(h); ok {
			return rt.tracer.StartRemoteAt(tid, parent, route, id, start)
		}
	}
	return rt.tracer.StartTraceAt(trace.DeriveTraceID(id), route, id, start)
}

// ---------------------------------------------------------------------------
// Shard hops

// hop is one forwarded request's outcome.
type hop struct {
	shard    string
	endpoint string
	status   int
	header   http.Header
	body     []byte
	err      error
}

// failed reports whether the hop should count as a shard failure
// (transport error or 5xx).
func (h hop) failed() bool { return h.err != nil || h.status >= 500 }

// do forwards one request to url (an absolute URL including path and
// query). The hop runs under its own child span, whose traceparent is
// propagated to the shard so the shard's trace files under the same
// trace id — /debug/traces/{id} on the router shows the fan-out, the
// same id on the shard shows that hop's server-side tree.
func (rt *Router) do(ctx context.Context, r *http.Request, sp trace.Span, shard, url, method string, body []byte) hop {
	endpoint := url
	if i := strings.Index(url, "/v1/"); i > 0 {
		endpoint = url[:i]
	}
	h := hop{shard: shard, endpoint: endpoint}
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		h.err = err
		return h
	}
	req.Header.Set("Content-Type", "application/json")
	if id := r.Header.Get("X-Request-ID"); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	hsp := sp.Child("router.shard")
	if hsp.Active() {
		hsp.SetStr("shard", shard)
		hsp.SetStr("endpoint", endpoint)
		req.Header.Set("traceparent", hsp.Traceparent())
	} else if tp := r.Header.Get("traceparent"); tp != "" {
		// Router tracing off but the caller traces: pass theirs through
		// so the shard still files under the caller's id.
		req.Header.Set("traceparent", tp)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	elapsed := time.Since(start)
	rt.mShardSeconds.With(shard).Observe(elapsed.Seconds())
	if err != nil {
		h.err = err
		rt.mShardReqs.With(shard, "error").Inc()
		rt.mShardErrors.With(shard).Inc()
		if hsp.Active() {
			hsp.SetStr("error", err.Error())
			hsp.EndAfter(elapsed)
		}
		return h
	}
	defer resp.Body.Close()
	h.status = resp.StatusCode
	h.header = resp.Header
	h.body, h.err = io.ReadAll(io.LimitReader(resp.Body, routerMaxBody))
	rt.mShardReqs.With(shard, strconv.Itoa(resp.StatusCode)).Inc()
	if h.failed() {
		rt.mShardErrors.With(shard).Inc()
	}
	if hsp.Active() {
		hsp.SetInt("http_status", int64(resp.StatusCode))
		hsp.EndAfter(elapsed)
	}
	return h
}

// shardCtx derives a per-shard hop deadline from the request deadline:
// 10% of the remaining budget (clamped to [5ms, 250ms]) is reserved
// for the router's own merge and write, so a slow shard times out
// while the router can still answer within the request's bound.
func shardCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	margin := time.Until(dl) / 10
	if margin < 5*time.Millisecond {
		margin = 5 * time.Millisecond
	}
	if margin > 250*time.Millisecond {
		margin = 250 * time.Millisecond
	}
	if shardDL := dl.Add(-margin); shardDL.After(time.Now()) {
		return context.WithDeadline(ctx, shardDL)
	}
	return context.WithCancel(ctx)
}

// tryRead forwards an idempotent read to the shard, trying the
// health-ordered replicas: the first hop that neither errors nor
// answers a retryable 5xx wins; otherwise ONE retry runs against the
// next replica in the order. 504 is not retried — the budget that
// produced it is already spent, and a second shard would time out the
// same way. Mutations never come through here.
func (rt *Router) tryRead(ctx context.Context, r *http.Request, sp trace.Span, shardIdx int, uri string, body []byte) hop {
	shard := rt.ring.Config().Shards[shardIdx]
	order := rt.health.readOrder(shardIdx, rt.opts.MaxLag)
	var last hop
	for attempt, ep := range order {
		if attempt > 1 {
			break // first try + one retry, never more
		}
		last = rt.do(ctx, r, sp, shard.Name, ep+uri, r.Method, body)
		if !last.failed() || last.status == http.StatusGatewayTimeout || ctx.Err() != nil {
			return last
		}
		if attempt == 0 && len(order) > 1 {
			rt.mRetries.With(shard.Name).Inc()
		}
	}
	return last
}

// relay writes a shard hop's response through to the client verbatim
// (status, JSON body, replication-lag disclosure), stamping which
// shard served it.
func (rt *Router) relay(w http.ResponseWriter, h hop) {
	if h.err != nil {
		writeErrorShards(w, http.StatusBadGateway,
			fmt.Errorf("shard %s unreachable: %v", h.shard, h.err), []string{h.shard})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Phomd-Shard", h.shard)
	if lag := h.header.Get("X-Replication-Lag"); lag != "" {
		w.Header().Set("X-Replication-Lag", lag)
	}
	w.WriteHeader(h.status)
	_, _ = w.Write(h.body)
}

// ---------------------------------------------------------------------------
// Mutations

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph name"))
		return
	}
	rt.forwardMutationNamed(w, r, req.Name, body)
}

func (rt *Router) forwardMutation(w http.ResponseWriter, r *http.Request, name string) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	if len(body) == 0 {
		body = nil
	}
	rt.forwardMutationNamed(w, r, name, body)
}

// forwardMutationNamed routes a mutation to the owning shard's
// primary. If the primary answers 421 Misdirected (the configured
// primary is actually a follower — a stale ring after a promotion),
// the Location header names the real primary and the router follows
// it exactly once. Mutations are never retried on failure: a
// connection error after the request was sent is indistinguishable
// from a success whose ack was lost, and replaying a register or
// patch is not idempotent.
func (rt *Router) forwardMutationNamed(w http.ResponseWriter, r *http.Request, name string, body []byte) {
	sp := trace.SpanFromContext(r.Context())
	shard := rt.ring.Owner(name)
	sp.SetStr("owner_shard", shard.Name)
	ctx, cancel := shardCtx(r.Context())
	defer cancel()
	h := rt.do(ctx, r, sp, shard.Name, shard.Primary()+r.URL.RequestURI(), r.Method, body)
	if h.err == nil && h.status == http.StatusMisdirectedRequest {
		if loc := h.header.Get("Location"); loc != "" {
			rt.mRedirects.Inc()
			sp.SetStr("redirected_to", loc)
			h = rt.do(ctx, r, sp, shard.Name, loc, r.Method, body)
		}
	}
	if h.err != nil {
		log.Printf("cluster: mutation %s %s to shard %s failed (not retried): %v",
			r.Method, r.URL.Path, shard.Name, h.err)
	}
	rt.relay(w, h)
}

// ---------------------------------------------------------------------------
// Single-graph reads

func (rt *Router) handleMatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Graph == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing graph name"))
		return
	}
	rt.forwardRead(w, r, req.Graph, body)
}

// forwardRead balances a single-graph read across the owning shard's
// replicas within the staleness bound, retrying once.
func (rt *Router) forwardRead(w http.ResponseWriter, r *http.Request, name string, body []byte) {
	if body == nil && r.Method != http.MethodGet {
		var ok bool
		if body, ok = readBody(w, r); !ok {
			return
		}
	}
	sp := trace.SpanFromContext(r.Context())
	shardIdx := rt.ring.OwnerIndex(name)
	sp.SetStr("owner_shard", rt.ring.Config().Shards[shardIdx].Name)
	ctx, cancel := shardCtx(r.Context())
	defer cancel()
	rt.relay(w, rt.tryRead(ctx, r, sp, shardIdx, r.URL.RequestURI(), body))
}

// ---------------------------------------------------------------------------
// Scatter-gather

// wantPartial reports whether the client opted into partial results
// (?partial=1): serve what the healthy shards returned, flagged
// incomplete, instead of failing the whole request.
func wantPartial(r *http.Request) bool {
	v := r.URL.Query().Get("partial")
	return v == "1" || v == "true"
}

// scatter fans one request to every shard concurrently (each hop
// balanced across that shard's replicas, one retry) and returns the
// per-shard outcomes, indexed like Config().Shards.
func (rt *Router) scatter(r *http.Request, uri string, body []byte) []hop {
	sp := trace.SpanFromContext(r.Context())
	shards := rt.ring.Config().Shards
	ctx, cancel := shardCtx(r.Context())
	defer cancel()
	out := make([]hop, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = rt.tryRead(ctx, r, sp, i, uri, body)
		}(i)
	}
	wg.Wait()
	rt.mFanout.Observe(float64(len(shards)))
	return out
}

// splitHops buckets scatter outcomes: served (200), a client error to
// relay as-is (4xx — every shard rejects the same bad request the
// same way, so the first is representative), and failed shard names.
func splitHops(hops []hop) (served []hop, clientErr *hop, failed []string) {
	for i := range hops {
		h := hops[i]
		switch {
		case h.failed():
			failed = append(failed, h.shard)
		case h.status == http.StatusOK:
			served = append(served, h)
		default:
			if clientErr == nil {
				clientErr = &hops[i]
			}
		}
	}
	return served, clientErr, failed
}

// SearchResponse is the router's scatter-gather search result: the
// single-node wire shape plus the fan-out disclosure. When every
// shard served, Hits is bit-identical to what one node holding the
// whole catalog would return (see the merge-exactness argument in
// DESIGN.md §11) and Incomplete is omitted.
type SearchResponse struct {
	httpapi.SearchResponse
	ShardsServed int      `json:"shards_served"`
	ShardsFailed []string `json:"shards_failed,omitempty"`
	Incomplete   bool     `json:"incomplete,omitempty"`
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		K    int    `json:"k"`
		Algo string `json:"algo"`
	}
	_ = json.Unmarshal(body, &req) // malformed bodies are the shards' 400 to give

	hops := rt.scatter(r, r.URL.RequestURI(), body)
	served, clientErr, failed := splitHops(hops)
	if clientErr != nil {
		rt.relay(w, *clientErr)
		return
	}
	if len(failed) > 0 && !wantPartial(r) {
		writeErrorShards(w, http.StatusBadGateway,
			fmt.Errorf("search incomplete: %d of %d shards failed (%s); retry or pass ?partial=1",
				len(failed), rt.ring.Shards(), strings.Join(failed, ", ")), failed)
		return
	}
	if len(failed) > 0 {
		rt.mPartial.Inc()
	}
	if len(served) == 0 {
		writeErrorShards(w, http.StatusBadGateway,
			fmt.Errorf("search failed: no shard reachable"), failed)
		return
	}

	// Decode the shard-local top-k lists and fold them through the
	// exact global ordering. Each shard returns its best k under the
	// same total order (score desc, tie desc, name asc — search.Better),
	// and every global top-k member is necessarily in its own shard's
	// local top-k, so the merge is exact, not approximate.
	var out SearchResponse
	top := search.NewTopK(0) // k resolved below once a shard reply names it
	algo := req.Algo
	k := 0
	first := true
	for _, h := range served {
		var sr httpapi.SearchResponse
		if err := json.Unmarshal(h.body, &sr); err != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Errorf("shard %s: undecodable search response: %v", h.shard, err))
			return
		}
		if first {
			out.Algo, out.K, out.PatternNodes = sr.Algo, sr.K, sr.PatternNodes
			algo, k = sr.Algo, sr.K
			top = search.NewTopK(k)
			first = false
		}
		for _, hit := range sr.Hits {
			top.Push(search.Hit{Name: hit.Graph, Score: hit.Score, Tie: tieOf(algo, hit), Payload: hit})
		}
		out.Stats.Graphs += sr.Stats.Graphs
		out.Stats.Candidates += sr.Stats.Candidates
		out.Stats.Pruned += sr.Stats.Pruned
		out.Stats.Matched += sr.Stats.Matched
		out.Stats.Missing += sr.Stats.Missing
		if sr.Stats.Stage1US > out.Stats.Stage1US {
			out.Stats.Stage1US = sr.Stats.Stage1US
		}
		if sr.Stats.Stage2US > out.Stats.Stage2US {
			out.Stats.Stage2US = sr.Stats.Stage2US
		}
	}
	if out.Stats.Graphs > 0 {
		out.Stats.PruneRate = float64(out.Stats.Pruned) / float64(out.Stats.Graphs)
	}
	out.Hits = make([]httpapi.SearchHitResponse, 0, top.Len())
	for i, h := range top.Ranked() {
		hit := h.Payload.(httpapi.SearchHitResponse)
		hit.Rank = i + 1
		out.Hits = append(out.Hits, hit)
	}
	out.ShardsServed = len(served)
	out.ShardsFailed = failed
	out.Incomplete = len(failed) > 0
	writeJSON(w, http.StatusOK, out)
}

// tieOf reconstructs the secondary ranking key the shard's fold used
// (engine.rankScore): the maxsim algorithms rank by qualSim and tie
// by qualCard; everything else ties by qualSim. Score already carries
// the primary key, so (Score, tieOf, Graph) reproduces the shard-side
// total order exactly.
func tieOf(algo string, h httpapi.SearchHitResponse) float64 {
	switch engine.Algorithm(algo) {
	case engine.MaxSim, engine.MaxSim11:
		return h.QualCard
	default:
		return h.QualSim
	}
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	hops := rt.scatter(r, r.URL.RequestURI(), nil)
	served, clientErr, failed := splitHops(hops)
	if clientErr != nil {
		rt.relay(w, *clientErr)
		return
	}
	if len(failed) > 0 && !wantPartial(r) {
		writeErrorShards(w, http.StatusBadGateway,
			fmt.Errorf("listing incomplete: shards failed: %s", strings.Join(failed, ", ")), failed)
		return
	}
	if len(failed) > 0 {
		rt.mPartial.Inc()
	}
	union := make(map[string]bool)
	for _, h := range served {
		var lr struct {
			Graphs []string `json:"graphs"`
		}
		if err := json.Unmarshal(h.body, &lr); err != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Errorf("shard %s: undecodable list response: %v", h.shard, err))
			return
		}
		for _, n := range lr.Graphs {
			union[n] = true
		}
	}
	names := make([]string, 0, len(union))
	for n := range union {
		names = append(names, n)
	}
	sort.Strings(names)
	out := struct {
		Graphs       []string `json:"graphs"`
		ShardsFailed []string `json:"shards_failed,omitempty"`
		Incomplete   bool     `json:"incomplete,omitempty"`
	}{Graphs: names, ShardsFailed: failed, Incomplete: len(failed) > 0}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var batch struct {
		Requests []json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}

	// Partition the batch by owning shard, preserving positions, then
	// scatter one sub-batch per involved shard and reassemble.
	results := make([]json.RawMessage, len(batch.Requests))
	shardItems := make(map[int][]json.RawMessage)
	shardPos := make(map[int][]int)
	for i, raw := range batch.Requests {
		var item struct {
			Graph string `json:"graph"`
		}
		if err := json.Unmarshal(raw, &item); err != nil || item.Graph == "" {
			results[i] = mustJSON(map[string]string{"error": "missing graph name"})
			continue
		}
		s := rt.ring.OwnerIndex(item.Graph)
		shardItems[s] = append(shardItems[s], raw)
		shardPos[s] = append(shardPos[s], i)
	}

	sp := trace.SpanFromContext(r.Context())
	ctx, cancel := shardCtx(r.Context())
	defer cancel()
	type subResult struct {
		shard int
		h     hop
	}
	ch := make(chan subResult, len(shardItems))
	for s, items := range shardItems {
		sub := mustJSON(map[string]any{"requests": items})
		go func(s int, sub []byte) {
			ch <- subResult{s, rt.tryRead(ctx, r, sp, s, r.URL.RequestURI(), sub)}
		}(s, sub)
	}
	rt.mFanout.Observe(float64(len(shardItems)))
	var failed []string
	for range shardItems {
		sr := <-ch
		pos := shardPos[sr.shard]
		if sr.h.failed() {
			failed = append(failed, sr.h.shard)
			msg := mustJSON(map[string]string{"error": fmt.Sprintf("shard %s failed: %s", sr.h.shard, hopError(sr.h))})
			for _, i := range pos {
				results[i] = msg
			}
			continue
		}
		var br struct {
			Results []json.RawMessage `json:"results"`
			Error   string            `json:"error"`
		}
		if err := json.Unmarshal(sr.h.body, &br); err != nil || (sr.h.status == http.StatusOK && len(br.Results) != len(pos)) {
			failed = append(failed, sr.h.shard)
			msg := mustJSON(map[string]string{"error": fmt.Sprintf("shard %s: undecodable batch response", sr.h.shard)})
			for _, i := range pos {
				results[i] = msg
			}
			continue
		}
		if sr.h.status != http.StatusOK {
			// A wholesale shard rejection (429, 400): every item carries it.
			msg := mustJSON(map[string]string{"error": fmt.Sprintf("shard %s: %s", sr.h.shard, br.Error)})
			for _, i := range pos {
				results[i] = msg
			}
			continue
		}
		for j, i := range pos {
			results[i] = br.Results[j] // positional restore
		}
	}
	if len(failed) > 0 && !wantPartial(r) {
		writeErrorShards(w, http.StatusBadGateway,
			fmt.Errorf("batch incomplete: shards failed: %s", strings.Join(failed, ", ")), failed)
		return
	}
	if len(failed) > 0 {
		rt.mPartial.Inc()
	}
	out := struct {
		Results      []json.RawMessage `json:"results"`
		ShardsFailed []string          `json:"shards_failed,omitempty"`
		Incomplete   bool              `json:"incomplete,omitempty"`
	}{Results: results, ShardsFailed: failed, Incomplete: len(failed) > 0}
	writeJSON(w, http.StatusOK, out)
}

func hopError(h hop) string {
	if h.err != nil {
		return h.err.Error()
	}
	return http.StatusText(h.status)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	hops := rt.scatter(r, "/v1/stats", nil)
	shards := make(map[string]json.RawMessage, len(hops))
	for _, h := range hops {
		if h.failed() {
			shards[h.shard] = mustJSON(map[string]string{"error": hopError(h)})
			continue
		}
		shards[h.shard] = json.RawMessage(h.body)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ring_version": rt.ring.Version(),
		"shards":       shards,
	})
}

// handleSnapshot fans the compaction request to every shard primary.
// Followers compact via their own primaries, so only primaries are
// addressed; any failure turns the whole response into a 502 so
// snapshot scripts gate correctly, but successful shards' stats are
// still included.
func (rt *Router) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sp := trace.SpanFromContext(r.Context())
	shards := rt.ring.Config().Shards
	ctx, cancel := shardCtx(r.Context())
	defer cancel()
	hops := make([]hop, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s ShardConfig) {
			defer wg.Done()
			hops[i] = rt.do(ctx, r, sp, s.Name, s.Primary()+"/v1/admin/snapshot", http.MethodPost, nil)
		}(i, s)
	}
	wg.Wait()
	out := make(map[string]json.RawMessage, len(hops))
	var failed []string
	for _, h := range hops {
		if h.failed() {
			failed = append(failed, h.shard)
			out[h.shard] = mustJSON(map[string]string{"error": hopError(h)})
			continue
		}
		out[h.shard] = json.RawMessage(h.body)
	}
	status := http.StatusOK
	if len(failed) > 0 {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{"shards": out, "shards_failed": failed})
}

// ---------------------------------------------------------------------------
// Introspection

// ClusterShard is one shard's row in GET /v1/cluster.
type ClusterShard struct {
	Name   string `json:"name"`
	VNodes int    `json:"vnodes"`
	// Graphs counts the names the shard holds (-1 when unreachable);
	// Sample shows up to five of them; Misplaced counts held names the
	// ring assigns elsewhere (non-zero means a ring change left data
	// behind — a rebalance migration is pending).
	Graphs    int              `json:"graphs"`
	Sample    []string         `json:"sample,omitempty"`
	Misplaced int              `json:"misplaced"`
	Endpoints []EndpointHealth `json:"endpoints"`
	Error     string           `json:"error,omitempty"`
}

// ClusterResponse is the body of GET /v1/cluster: the serialized ring
// (so clients rebuild the exact placement, version included), live
// endpoint health, and what each shard actually holds.
type ClusterResponse struct {
	Ring      Config         `json:"ring"`
	Shards    []ClusterShard `json:"shards"`
	Reachable bool           `json:"reachable"`
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	// Re-probe now so the health shown is live, not up to an interval
	// stale — this is the endpoint operators stare at mid-incident.
	rt.health.probeAll()
	cfg := rt.ring.Config()
	hops := rt.scatter(r, "/v1/graphs", nil)
	out := ClusterResponse{Ring: cfg, Reachable: true}
	for i, s := range cfg.Shards {
		row := ClusterShard{
			Name:      s.Name,
			VNodes:    cfg.VNodes,
			Graphs:    -1,
			Endpoints: rt.health.snapshot(i),
		}
		h := hops[i]
		if h.failed() || h.status != http.StatusOK {
			row.Error = hopError(h)
			out.Reachable = false
		} else {
			var lr struct {
				Graphs []string `json:"graphs"`
			}
			if err := json.Unmarshal(h.body, &lr); err != nil {
				row.Error = "undecodable graph list"
				out.Reachable = false
			} else {
				row.Graphs = len(lr.Graphs)
				for _, n := range lr.Graphs {
					if rt.ring.OwnerIndex(n) != i {
						row.Misplaced++
					}
				}
				if len(lr.Graphs) > 5 {
					lr.Graphs = lr.Graphs[:5]
				}
				row.Sample = lr.Graphs
			}
		}
		out.Shards = append(out.Shards, row)
	}
	writeJSON(w, http.StatusOK, out)
}

// readyz: the router is ready when every shard has at least one
// endpoint that is ready (or not yet probed — a cold router reports
// ready rather than flapping while the first probe round runs).
func (rt *Router) readyz(w http.ResponseWriter, r *http.Request) {
	var down []string
	cfg := rt.ring.Config()
	for i, s := range cfg.Shards {
		ok := false
		for _, eh := range rt.health.snapshot(i) {
			if eh.Ready || !eh.Probed {
				ok = true
				break
			}
		}
		if !ok {
			down = append(down, s.Name)
		}
	}
	if len(down) > 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "degraded", "shards_down": down})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (rt *Router) debugTraces(w http.ResponseWriter, r *http.Request) {
	if rt.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, httpapi.BuildTraceList(rt.tracer, limit))
}

func (rt *Router) debugTrace(w http.ResponseWriter, r *http.Request) {
	if rt.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	key := r.PathValue("id")
	td, ok := rt.tracer.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace %q in the flight recorder", key))
		return
	}
	writeJSON(w, http.StatusOK, httpapi.BuildTraceDetail(rt.tracer, td))
}

// ---------------------------------------------------------------------------
// Plumbing

type statusRecorder struct {
	http.ResponseWriter
	status  int
	traceID string
}

func (rec *statusRecorder) WriteHeader(code int) {
	rec.status = code
	rec.ResponseWriter.WriteHeader(code)
}

type errorResponse struct {
	Error        string   `json:"error"`
	TraceID      string   `json:"trace_id,omitempty"`
	FailedShards []string `json:"failed_shards,omitempty"`
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, routerMaxBody)
	b, err := io.ReadAll(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return b, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorShards(w, status, err, nil)
}

func writeErrorShards(w http.ResponseWriter, status int, err error, failed []string) {
	resp := errorResponse{Error: err.Error(), FailedShards: failed}
	if rec, ok := w.(*statusRecorder); ok {
		resp.TraceID = rec.traceID
	}
	writeJSON(w, status, resp)
}

func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // marshalling maps of strings cannot fail
	}
	return b
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
