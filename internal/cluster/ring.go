// Package cluster is the horizontal-scaling tier of phomd: a
// consistent-hash ring that places each registered graph on exactly
// one shard, and a stateless router (router.go) that fronts a fleet
// of phomd shards — routing mutations to the owning shard's primary,
// balancing single-graph reads across a shard's replicas, and
// scatter-gathering catalog-wide searches into an exact global top-k.
//
// The ring is the contract every party agrees on: routers, the `phom
// cluster` verb and operators all derive placement from the same
// serialized Config (a version number detects mismatched views), so
// "which shard owns graph X" has one answer everywhere.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// DefaultVNodes is the virtual-node count per shard when a Config
// leaves VNodes at 0. More vnodes smooth the key distribution and
// shrink the variance of how much data a ring change moves; 64 keeps
// the spread within a few percent at single-digit shard counts.
const DefaultVNodes = 64

// ShardConfig names one shard and its serving endpoints. The first
// endpoint is the primary — the only endpoint mutations are sent to —
// and any further endpoints are read replicas (phomd -follow).
type ShardConfig struct {
	Name      string   `json:"name"`
	Endpoints []string `json:"endpoints"`
}

// Primary returns the shard's mutation endpoint.
func (s ShardConfig) Primary() string { return s.Endpoints[0] }

// Config is the serializable ring description. Routers and the phom
// CLI build identical rings from identical Configs; Version lets two
// parties check they agree on placement before trusting each other's
// answers (a router logs its ring version at boot, `phom cluster`
// prints the version it fetched).
type Config struct {
	Version int           `json:"version"`
	VNodes  int           `json:"vnodes"`
	Shards  []ShardConfig `json:"shards"`
}

// Ring is an immutable consistent-hash ring over a Config: each shard
// contributes VNodes points on a 64-bit hash circle, and a graph name
// is owned by the shard of the first point at or clockwise of the
// name's hash. Placement depends only on (shard names, VNodes), never
// on shard order or endpoint lists, so endpoint changes (a replica
// added, a primary moved) move no data, and adding a shard moves only
// the ~1/N of names whose arc the new shard's points claim.
type Ring struct {
	cfg    Config
	points []point // sorted by (hash, shard index)
}

type point struct {
	hash  uint64
	shard int
}

// NewRing validates cfg and builds its ring. VNodes 0 applies
// DefaultVNodes; Version 0 is normalised to 1.
func NewRing(cfg Config) (*Ring, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: ring has no shards")
	}
	if cfg.VNodes == 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.VNodes < 0 {
		return nil, fmt.Errorf("cluster: vnodes %d negative", cfg.VNodes)
	}
	if cfg.Version <= 0 {
		cfg.Version = 1
	}
	seen := make(map[string]bool, len(cfg.Shards))
	shards := make([]ShardConfig, len(cfg.Shards))
	for i, s := range cfg.Shards {
		if s.Name == "" {
			return nil, fmt.Errorf("cluster: shard %d has no name", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Endpoints) == 0 {
			return nil, fmt.Errorf("cluster: shard %q has no endpoints", s.Name)
		}
		eps := make([]string, len(s.Endpoints))
		for j, ep := range s.Endpoints {
			ep = strings.TrimRight(ep, "/")
			if !strings.HasPrefix(ep, "http://") && !strings.HasPrefix(ep, "https://") {
				return nil, fmt.Errorf("cluster: shard %q endpoint %q is not an http(s) URL", s.Name, ep)
			}
			eps[j] = ep
		}
		shards[i] = ShardConfig{Name: s.Name, Endpoints: eps}
	}
	cfg.Shards = shards

	r := &Ring{cfg: cfg, points: make([]point, 0, len(cfg.Shards)*cfg.VNodes)}
	for i, s := range cfg.Shards {
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, point{hash: hashKey(s.Name + "#" + fmt.Sprint(v)), shard: i})
		}
	}
	// Sort by hash; ties (astronomically unlikely with fnv64a, but
	// placement must be total) break by shard index for determinism.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// hashKey is the ring's one hash function, for vnode points and graph
// names alike: FNV-1a 64 finished with a splitmix64 avalanche, stable
// across processes and Go versions. Raw FNV-1a barely diffuses its
// high bits on short keys, so sequential names ("site-0001",
// "site-0002") and a shard's vnode points ("s0#0".."s0#63") land in
// tight clumps on the circle — one shard ends up owning most of the
// catalog. The finalizer spreads every input bit over the whole word,
// restoring the uniform-arc assumption consistent hashing needs.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a fixed bijection
// on uint64 — changing it would re-place every graph in every
// deployment, so it is as much wire format as the ring Config.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OwnerIndex returns the index (into Config().Shards) of the shard
// owning the given graph name.
func (r *Ring) OwnerIndex(name string) int {
	h := hashKey(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point, the first point owns it
	}
	return r.points[i].shard
}

// Owner returns the shard owning the given graph name.
func (r *Ring) Owner(name string) ShardConfig {
	return r.cfg.Shards[r.OwnerIndex(name)]
}

// Config returns the normalised configuration the ring was built from.
func (r *Ring) Config() Config { return r.cfg }

// Version returns the ring's placement version.
func (r *Ring) Version() int { return r.cfg.Version }

// Shards returns the shard count.
func (r *Ring) Shards() int { return len(r.cfg.Shards) }

// ParseSpec builds a Config from the phomd -shards flag syntax: a
// semicolon-separated list of shards, each "name=primary[,replica...]"
// (the name may be omitted, yielding shard00, shard01, ...):
//
//	-shards "s0=http://h0:8080,http://h0:8081;s1=http://h1:8080"
//
// vnodes 0 applies DefaultVNodes.
func ParseSpec(spec string, vnodes int) (Config, error) {
	cfg := Config{Version: 1, VNodes: vnodes}
	for i, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := fmt.Sprintf("shard%02d", i)
		urls := part
		if eq := strings.Index(part, "="); eq >= 0 && !strings.Contains(part[:eq], "/") {
			name, urls = part[:eq], part[eq+1:]
		}
		var eps []string
		for _, u := range strings.Split(urls, ",") {
			if u = strings.TrimSpace(u); u != "" {
				eps = append(eps, u)
			}
		}
		if len(eps) == 0 {
			return Config{}, fmt.Errorf("cluster: shard spec %q has no endpoints", part)
		}
		cfg.Shards = append(cfg.Shards, ShardConfig{Name: name, Endpoints: eps})
	}
	if len(cfg.Shards) == 0 {
		return Config{}, fmt.Errorf("cluster: empty -shards spec")
	}
	return cfg, nil
}

// LoadConfig parses a serialized ring configuration (the JSON form of
// Config, as written by an operator or another router).
func LoadConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("cluster: parsing ring config: %w", err)
	}
	return cfg, nil
}
