package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
	"graphmatch/internal/trace"
	"graphmatch/internal/webgen"
)

// testShard is one real phomd shard: an in-memory engine behind the
// full httpapi handler (observe shell, tracing, the lot).
type testShard struct {
	eng *engine.Engine
	srv *httptest.Server
}

func newShard(t *testing.T) *testShard {
	t.Helper()
	e := engine.New(engine.Options{Workers: 2})
	t.Cleanup(e.Close)
	srv := httptest.NewServer(httpapi.New(e))
	t.Cleanup(srv.Close)
	return &testShard{eng: e, srv: srv}
}

// newTestRouter builds a router over the given shards and serves it.
// The probe interval is long: tests that need fresh health call
// rt.health.probeAll() explicitly, everything else exercises the
// optimistic-unprobed path.
func newTestRouter(t *testing.T, cfg Config, opts RouterOptions) (*Router, *httptest.Server) {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = time.Hour
	}
	rt, err := NewRouter(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return rt, srv
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// webCatalog generates a deterministic mixed-category catalog plus the
// patterns the quickcheck replays.
func webCatalog(sites, pages int) (names []string, graphs []*graph.Graph, patterns []*graph.Graph) {
	cats := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	for s := 0; s < sites; s++ {
		arch := webgen.Generate(webgen.Config{
			Category: cats[s%len(cats)],
			Pages:    pages,
			Versions: 1,
			Seed:     int64(101 + s),
		})
		g := arch.Versions[0]
		names = append(names, fmt.Sprintf("site%02d", s))
		graphs = append(graphs, g)
		patterns = append(patterns, webgen.TopKSkeleton(g, 6))
	}
	return names, graphs, patterns
}

// clusterOf builds n real shards and a router fronting them.
func clusterOf(t *testing.T, n int, opts RouterOptions) ([]*testShard, *Router, *httptest.Server) {
	t.Helper()
	shards := make([]*testShard, n)
	cfg := Config{Version: 1}
	for i := range shards {
		shards[i] = newShard(t)
		cfg.Shards = append(cfg.Shards, ShardConfig{
			Name:      fmt.Sprintf("s%d", i),
			Endpoints: []string{shards[i].srv.URL},
		})
	}
	rt, srv := newTestRouter(t, cfg, opts)
	return shards, rt, srv
}

// TestClusterEquivalence is the sharded-vs-single-node quickcheck: the
// same webgen catalog registered through a 3-shard router and into one
// node must answer bit-identical /v1/search top-k (hits compared as
// raw JSON), identical /v1/match and batch results, and the same graph
// listing. This is the empirical side of the DESIGN §11 exactness
// argument.
func TestClusterEquivalence(t *testing.T) {
	names, graphs, patterns := webCatalog(9, 12)
	single := newShard(t)
	shards, _, router := clusterOf(t, 3, RouterOptions{})

	perShard := make(map[string]int)
	for i, name := range names {
		if code, body := postJSON(t, router.URL+"/v1/graphs",
			httpapi.RegisterRequest{Name: name, Graph: graphs[i]}); code != http.StatusCreated {
			t.Fatalf("register %s via router: %d %s", name, code, body)
		}
		if code, body := postJSON(t, single.srv.URL+"/v1/graphs",
			httpapi.RegisterRequest{Name: name, Graph: graphs[i]}); code != http.StatusCreated {
			t.Fatalf("register %s on single: %d %s", name, code, body)
		}
	}
	for i, s := range shards {
		perShard[fmt.Sprintf("s%d", i)] = s.eng.Catalog().Len()
	}
	total := 0
	for _, n := range perShard {
		total += n
	}
	if total != len(names) {
		t.Fatalf("shards hold %d graphs total (%v), want %d", total, perShard, len(names))
	}

	// Listing: the union must equal the single node's list.
	_, routerList := getJSON(t, router.URL+"/v1/graphs")
	_, singleList := getJSON(t, single.srv.URL+"/v1/graphs")
	var rl, sl struct {
		Graphs []string `json:"graphs"`
	}
	if err := json.Unmarshal(routerList, &rl); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(singleList, &sl); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rl.Graphs, sl.Graphs) {
		t.Fatalf("graph listings diverge:\nrouter: %v\nsingle: %v", rl.Graphs, sl.Graphs)
	}

	for pi, pattern := range patterns {
		for _, algo := range []string{"maxsim", "maxcard"} {
			req := httpapi.SearchRequest{Pattern: pattern, Algo: algo, K: 5, Sim: "content"}
			rCode, rBody := postJSON(t, router.URL+"/v1/search", req)
			sCode, sBody := postJSON(t, single.srv.URL+"/v1/search", req)
			if rCode != http.StatusOK || sCode != http.StatusOK {
				t.Fatalf("pattern %d %s: router %d (%s), single %d (%s)", pi, algo, rCode, rBody, sCode, sBody)
			}
			var rr SearchResponse
			var sr httpapi.SearchResponse
			if err := json.Unmarshal(rBody, &rr); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(sBody, &sr); err != nil {
				t.Fatal(err)
			}
			if rr.Incomplete || rr.ShardsServed != 3 {
				t.Fatalf("pattern %d %s: router response not complete: %+v", pi, algo, rr)
			}
			rHits, _ := json.Marshal(rr.Hits)
			sHits, _ := json.Marshal(sr.Hits)
			if !bytes.Equal(rHits, sHits) {
				t.Fatalf("pattern %d %s: top-k diverges\nrouter: %s\nsingle: %s", pi, algo, rHits, sHits)
			}
			if rr.Algo != sr.Algo || rr.K != sr.K || rr.PatternNodes != sr.PatternNodes {
				t.Fatalf("pattern %d %s: envelope diverges: %+v vs %+v", pi, algo, rr.SearchResponse, sr)
			}
			// Work accounting sums exactly: the shards partition the catalog.
			if rr.Stats.Graphs != sr.Stats.Graphs || rr.Stats.Candidates != sr.Stats.Candidates ||
				rr.Stats.Matched != sr.Stats.Matched || rr.Stats.Pruned != sr.Stats.Pruned {
				t.Fatalf("pattern %d %s: stats diverge: %+v vs %+v", pi, algo, rr.Stats, sr.Stats)
			}
		}
	}

	// Single-graph match through the router (balanced read) must equal
	// the single node, modulo timing.
	for i, name := range names {
		req := httpapi.MatchRequest{Pattern: patterns[i%len(patterns)], Graph: name, Algo: "maxsim", Sim: "content"}
		rCode, rBody := postJSON(t, router.URL+"/v1/match", req)
		sCode, sBody := postJSON(t, single.srv.URL+"/v1/match", req)
		if rCode != http.StatusOK || sCode != http.StatusOK {
			t.Fatalf("match %s: router %d (%s), single %d", name, rCode, rBody, sCode)
		}
		var rm, sm httpapi.MatchResponse
		if err := json.Unmarshal(rBody, &rm); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(sBody, &sm); err != nil {
			t.Fatal(err)
		}
		rm.ElapsedUS, sm.ElapsedUS = 0, 0
		rm.Coalesced, sm.Coalesced = false, false
		if !reflect.DeepEqual(rm, sm) {
			t.Fatalf("match %s diverges:\nrouter: %+v\nsingle: %+v", name, rm, sm)
		}
	}

	// Batch: split by shard, reassembled positionally.
	var batch httpapi.BatchRequest
	for i, name := range names {
		batch.Requests = append(batch.Requests,
			httpapi.MatchRequest{Pattern: patterns[i%len(patterns)], Graph: name, Algo: "maxcard", Sim: "content"})
	}
	rCode, rBody := postJSON(t, router.URL+"/v1/match/batch", batch)
	sCode, sBody := postJSON(t, single.srv.URL+"/v1/match/batch", batch)
	if rCode != http.StatusOK || sCode != http.StatusOK {
		t.Fatalf("batch: router %d (%s), single %d", rCode, rBody, sCode)
	}
	var rb struct {
		Results []httpapi.MatchResponse `json:"results"`
	}
	var sb httpapi.BatchResponse
	if err := json.Unmarshal(rBody, &rb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sBody, &sb); err != nil {
		t.Fatal(err)
	}
	if len(rb.Results) != len(sb.Results) {
		t.Fatalf("batch lengths diverge: %d vs %d", len(rb.Results), len(sb.Results))
	}
	for i := range rb.Results {
		a, b := rb.Results[i], sb.Results[i]
		a.ElapsedUS, b.ElapsedUS = 0, 0
		a.Coalesced, b.Coalesced = false, false
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("batch item %d (%s) diverges:\nrouter: %+v\nsingle: %+v", i, names[i], a, b)
		}
	}

	// Mutations route by ownership: a delete lands on the owning shard.
	victim := names[0]
	if code, body := func() (int, []byte) {
		req, _ := http.NewRequest(http.MethodDelete, router.URL+"/v1/graphs/"+victim, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}(); code != http.StatusOK {
		t.Fatalf("delete via router: %d %s", code, body)
	}
	left := 0
	for _, s := range shards {
		left += s.eng.Catalog().Len()
	}
	if left != len(names)-1 {
		t.Fatalf("after delete, shards hold %d graphs, want %d", left, len(names)-1)
	}
}

// TestClusterPartialFailure: one shard down → the default policy fails
// closed with a typed error body naming the failed shard; ?partial=1
// serves the surviving shards' results flagged incomplete.
func TestClusterPartialFailure(t *testing.T) {
	names, graphs, patterns := webCatalog(6, 10)
	shards, _, router := clusterOf(t, 3, RouterOptions{})
	for i, name := range names {
		if code, body := postJSON(t, router.URL+"/v1/graphs",
			httpapi.RegisterRequest{Name: name, Graph: graphs[i]}); code != http.StatusCreated {
			t.Fatalf("register %s: %d %s", name, code, body)
		}
	}
	shards[1].srv.Close() // s1 goes dark

	req := httpapi.SearchRequest{Pattern: patterns[0], Algo: "maxsim", K: 5, Sim: "content"}
	code, body := postJSON(t, router.URL+"/v1/search", req)
	if code != http.StatusBadGateway {
		t.Fatalf("search with a dead shard: %d (%s), want 502", code, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body not typed JSON: %v (%s)", err, body)
	}
	if er.Error == "" || len(er.FailedShards) != 1 || er.FailedShards[0] != "s1" {
		t.Fatalf("typed error body %+v, want failed_shards=[s1]", er)
	}

	code, body = postJSON(t, router.URL+"/v1/search?partial=1", req)
	if code != http.StatusOK {
		t.Fatalf("partial search: %d (%s), want 200", code, body)
	}
	var pr SearchResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Incomplete || pr.ShardsServed != 2 || len(pr.ShardsFailed) != 1 || pr.ShardsFailed[0] != "s1" {
		t.Fatalf("partial response %+v, want incomplete with s1 failed", pr)
	}
	// The served hits are exactly what the two live shards hold.
	for _, h := range pr.Hits {
		if shards[0].eng.Catalog().Len() == 0 {
			break
		}
		if _, err := shards[1].eng.Catalog().Get(h.Graph); err == nil {
			t.Fatalf("partial result contains %s from the dead shard", h.Graph)
		}
	}

	// Listing follows the same policy.
	if code, _ := getJSON(t, router.URL+"/v1/graphs"); code != http.StatusBadGateway {
		t.Fatalf("listing with dead shard: %d, want 502", code)
	}
	code, body = getJSON(t, router.URL+"/v1/graphs?partial=1")
	if code != http.StatusOK || !strings.Contains(string(body), `"incomplete":true`) {
		t.Fatalf("partial listing: %d %s", code, body)
	}

	// /v1/cluster reports the shard unreachable.
	code, body = getJSON(t, router.URL+"/v1/cluster")
	if code != http.StatusOK {
		t.Fatalf("/v1/cluster: %d", code)
	}
	var cr ClusterResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Reachable {
		t.Fatalf("cluster reports reachable with s1 down: %+v", cr)
	}
	// And after the forced probe round, /readyz degrades.
	code, body = getJSON(t, router.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "s1") {
		t.Fatalf("/readyz with s1 down: %d %s, want 503 naming s1", code, body)
	}
}

// countingServer wraps a handler and counts non-probe requests.
func countingServer(t *testing.T, status int, readyzOK bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if readyzOK {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		n.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":"injected failure"}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

// TestClusterReadRetryOnce: a read that lands on a 500ing replica is
// retried once against the next replica and succeeds; mutations are
// never retried even when more replicas exist.
func TestClusterReadRetryOnce(t *testing.T) {
	good := newShard(t)
	bad, badCount := countingServer(t, http.StatusInternalServerError, true)

	// Reads: replica set [good, bad], both probing ready, so rotation
	// alternates and roughly half the reads hit the bad replica first.
	cfg := Config{Shards: []ShardConfig{{Name: "s0", Endpoints: []string{good.srv.URL, bad.URL}}}}
	rt, router := newTestRouter(t, cfg, RouterOptions{})

	_, data := webgenPair()
	if code, body := postJSON(t, router.URL+"/v1/graphs",
		httpapi.RegisterRequest{Name: "g", Graph: data}); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	const reads = 8
	for i := 0; i < reads; i++ {
		code, body := getJSON(t, router.URL+"/v1/graphs/g")
		if code != http.StatusOK {
			t.Fatalf("read %d failed through retry: %d %s", i, code, body)
		}
	}
	if badCount.Load() == 0 {
		t.Fatal("rotation never touched the bad replica; retry path untested")
	}
	if rt.mRetries.With("s0").Value() == 0 {
		t.Fatal("phomd_router_retries_total never incremented")
	}

	// Mutations: primary is a failing server and a healthy replica
	// exists — the router must pass the failure through untried.
	bad2, bad2Count := countingServer(t, http.StatusInternalServerError, true)
	cfg2 := Config{Shards: []ShardConfig{{Name: "m0", Endpoints: []string{bad2.URL, good.srv.URL}}}}
	_, router2 := newTestRouter(t, cfg2, RouterOptions{})
	code, _ := postJSON(t, router2.URL+"/v1/graphs", httpapi.RegisterRequest{Name: "h", Graph: data})
	if code != http.StatusInternalServerError {
		t.Fatalf("mutation against failing primary: %d, want the 500 passed through", code)
	}
	if got := bad2Count.Load(); got != 1 {
		t.Fatalf("failing primary hit %d times by one mutation, want exactly 1 (no retry)", got)
	}
	if _, err := good.eng.Catalog().Get("h"); err == nil {
		t.Fatal("mutation was retried onto the replica")
	}
}

// TestClusterMisdirectedFollow: a shard whose configured primary is
// actually a follower answers 421 + Location; the router follows it
// exactly once and the mutation lands on the real primary.
func TestClusterMisdirectedFollow(t *testing.T) {
	real := newShard(t)
	var stubHits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		stubHits.Add(1)
		w.Header().Set("Location", real.srv.URL+r.URL.RequestURI())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		fmt.Fprintf(w, `{"error":"read-only follower"}`)
	}))
	t.Cleanup(stub.Close)

	cfg := Config{Shards: []ShardConfig{{Name: "s0", Endpoints: []string{stub.URL}}}}
	rt, router := newTestRouter(t, cfg, RouterOptions{})

	_, data := webgenPair()
	code, body := postJSON(t, router.URL+"/v1/graphs", httpapi.RegisterRequest{Name: "g", Graph: data})
	if code != http.StatusCreated {
		t.Fatalf("register through 421 redirect: %d %s", code, body)
	}
	if _, err := real.eng.Catalog().Get("g"); err != nil {
		t.Fatalf("mutation did not land on the real primary: %v", err)
	}
	if got := stubHits.Load(); got != 1 {
		t.Fatalf("stub primary hit %d times, want 1", got)
	}
	if rt.mRedirects.Value() != 1 {
		t.Fatalf("phomd_router_redirects_total = %d, want 1", rt.mRedirects.Value())
	}
}

// TestClusterTraceFanout: one routed search produces a router trace
// whose span tree shows one router.shard hop per shard, and each
// shard's own flight recorder holds a remote trace under the same
// trace id — the cross-shard /debug/traces/{id} story.
func TestClusterTraceFanout(t *testing.T) {
	names, graphs, patterns := webCatalog(3, 10)
	shards, _, router := clusterOf(t, 3, RouterOptions{})
	for i, name := range names {
		if code, _ := postJSON(t, router.URL+"/v1/graphs",
			httpapi.RegisterRequest{Name: name, Graph: graphs[i]}); code != http.StatusCreated {
			t.Fatalf("register %s failed", name)
		}
	}

	data, _ := json.Marshal(httpapi.SearchRequest{Pattern: patterns[0], Algo: "maxsim", K: 3, Sim: "content"})
	resp, err := http.Post(router.URL+"/v1/search", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d", resp.StatusCode)
	}
	tp := resp.Header.Get("traceparent")
	tid, _, ok := trace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("router response carries no traceparent: %q", tp)
	}

	code, body := getJSON(t, router.URL+"/debug/traces/"+tid.String())
	if code != http.StatusOK {
		t.Fatalf("/debug/traces/%s on router: %d %s", tid, code, body)
	}
	var td httpapi.TraceDetailResponse
	if err := json.Unmarshal(body, &td); err != nil {
		t.Fatal(err)
	}
	hops := 0
	for _, sp := range td.Spans {
		if sp.Name == "router.shard" {
			hops++
		}
	}
	if hops < 3 {
		t.Fatalf("router trace has %d router.shard spans, want one per shard (3): %s", hops, body)
	}

	// Every shard filed its server-side tree under the same trace id,
	// re-parented as remote.
	for i, s := range shards {
		deadline := time.Now().Add(2 * time.Second)
		for {
			std, found := s.eng.Tracer().Get(tid.String())
			if found {
				if !std.Remote {
					t.Fatalf("shard %d trace not re-parented (Remote=false)", i)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d never recorded trace %s", i, tid)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// webgenPair returns a small (pattern, data) graph pair for tests that
// just need any registrable graph.
func webgenPair() (*graph.Graph, *graph.Graph) {
	g := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 10, Versions: 1, Seed: 7}).Versions[0]
	return webgen.TopKSkeleton(g, 5), g
}
