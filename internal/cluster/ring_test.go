package cluster

import (
	"encoding/json"
	"fmt"
	"testing"
)

func shardNames(n int) []ShardConfig {
	out := make([]ShardConfig, n)
	for i := range out {
		out[i] = ShardConfig{
			Name:      fmt.Sprintf("s%d", i),
			Endpoints: []string{fmt.Sprintf("http://host%d:8080", i)},
		}
	}
	return out
}

func testNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("site-%04d", i)
	}
	return out
}

// Placement must be a pure function of (shard names, vnodes): two
// rings from the same config agree on every name, and shard order in
// the config is irrelevant.
func TestRingDeterminism(t *testing.T) {
	cfg := Config{Shards: shardNames(4)}
	a, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reversed := Config{Shards: []ShardConfig{cfg.Shards[3], cfg.Shards[2], cfg.Shards[1], cfg.Shards[0]}}
	c, err := NewRing(reversed)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range testNames(1000) {
		if a.Owner(name).Name != b.Owner(name).Name {
			t.Fatalf("same config, different owner for %q", name)
		}
		if a.Owner(name).Name != c.Owner(name).Name {
			t.Fatalf("shard order changed placement of %q: %s vs %s",
				name, a.Owner(name).Name, c.Owner(name).Name)
		}
	}
}

// Endpoint changes (replica added, primary moved) must not move data.
func TestRingPlacementIgnoresEndpoints(t *testing.T) {
	cfg := Config{Shards: shardNames(3)}
	a, _ := NewRing(cfg)
	moved := Config{Shards: shardNames(3)}
	for i := range moved.Shards {
		moved.Shards[i].Endpoints = []string{
			fmt.Sprintf("http://elsewhere%d:9999", i),
			fmt.Sprintf("http://replica%d:9999", i),
		}
	}
	b, _ := NewRing(moved)
	for _, name := range testNames(500) {
		if a.Owner(name).Name != b.Owner(name).Name {
			t.Fatalf("endpoint change moved %q", name)
		}
	}
}

// A serialized ring config round-trips into the identical placement,
// version included — the property routers and phom rely on to agree.
func TestRingConfigRoundTrip(t *testing.T) {
	cfg := Config{Version: 7, VNodes: 32, Shards: shardNames(3)}
	a, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(a.Config())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := LoadConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version() != 7 {
		t.Fatalf("version lost in round trip: %d", b.Version())
	}
	for _, name := range testNames(500) {
		if a.Owner(name).Name != b.Owner(name).Name {
			t.Fatalf("round-tripped config moved %q", name)
		}
	}
}

// Adding one shard to an N-shard ring moves roughly 1/(N+1) of the
// names — and every moved name lands on the new shard, never between
// old shards (the consistent-hashing contract).
func TestRingRebalance(t *testing.T) {
	const names = 4000
	before, err := NewRing(Config{Shards: shardNames(4)})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(Config{Shards: shardNames(5)})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, name := range testNames(names) {
		oldOwner := before.Owner(name).Name
		newOwner := after.Owner(name).Name
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "s4" {
			t.Fatalf("%q moved %s -> %s, not to the new shard", name, oldOwner, newOwner)
		}
	}
	// Expectation is names/5 = 800; allow generous variance but fail on
	// a broken hash that reshuffles half the catalog.
	if moved == 0 {
		t.Fatal("adding a shard moved nothing")
	}
	if frac := float64(moved) / names; frac > 0.35 {
		t.Fatalf("adding 1 shard to 4 moved %.0f%% of names, want ~20%%", frac*100)
	}
}

// With vnodes the per-shard load stays within a sane band.
func TestRingDistribution(t *testing.T) {
	r, err := NewRing(Config{Shards: shardNames(3)})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const names = 3000
	for _, name := range testNames(names) {
		counts[r.Owner(name).Name]++
	}
	for shard, n := range counts {
		frac := float64(n) / names
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("shard %s owns %.0f%% of names; vnode spread broken", shard, frac*100)
		}
	}
}

func TestRingValidation(t *testing.T) {
	cases := []Config{
		{},                                  // no shards
		{Shards: []ShardConfig{{Name: ""}}}, // unnamed
		{Shards: []ShardConfig{
			{Name: "a", Endpoints: []string{"http://x"}},
			{Name: "a", Endpoints: []string{"http://y"}},
		}}, // duplicate
		{Shards: []ShardConfig{{Name: "a"}}},                                              // no endpoints
		{Shards: []ShardConfig{{Name: "a", Endpoints: []string{"host:80"}}}},              // not a URL
		{VNodes: -1, Shards: []ShardConfig{{Name: "a", Endpoints: []string{"http://x"}}}}, // negative vnodes
	}
	for i, cfg := range cases {
		if _, err := NewRing(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	r, err := NewRing(Config{Shards: []ShardConfig{{Name: "a", Endpoints: []string{"http://x/"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Config(); got.VNodes != DefaultVNodes || got.Version != 1 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if ep := r.Config().Shards[0].Primary(); ep != "http://x" {
		t.Fatalf("trailing slash kept: %q", ep)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("s0=http://a:1,http://a:2; s1=http://b:1 ;http://c:1", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Shards) != 3 || cfg.VNodes != 16 {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.Shards[0].Name != "s0" || len(cfg.Shards[0].Endpoints) != 2 {
		t.Fatalf("shard 0: %+v", cfg.Shards[0])
	}
	if cfg.Shards[2].Name != "shard02" {
		t.Fatalf("unnamed shard got %q, want shard02", cfg.Shards[2].Name)
	}
	if _, err := ParseSpec("", 0); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := ParseSpec("s0=;", 0); err == nil {
		t.Fatal("endpointless shard accepted")
	}
	// A URL containing "=" in its query must not be split as a name.
	cfg, err = ParseSpec("http://host:8080/base?x=1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards[0].Name != "shard00" {
		t.Fatalf("query '=' parsed as shard name: %+v", cfg.Shards[0])
	}
}
