// Package shingle implements Broder-style w-shingling of text and the
// resemblance measure built on it [Broder et al., "Syntactic clustering of
// the Web", 1997 — reference 8 of the paper]. The paper derives its node
// similarity matrix mat() for Web graphs from "common shingles that u and v
// share": each page's text is decomposed into overlapping word w-grams, the
// grams are hashed into a set, and two pages' similarity is the Jaccard
// resemblance of their shingle sets.
package shingle

import (
	"hash/fnv"
	"strings"
	"unicode"
)

// DefaultSize is the shingle width used when a Shingler is created with a
// non-positive size. Four-word shingles are a common choice in the
// literature and work well on the synthetic page text used in this
// repository.
const DefaultSize = 4

// Set is a set of hashed shingles.
type Set map[uint64]struct{}

// Shingler turns text into shingle sets with a fixed window size.
type Shingler struct {
	size int
}

// NewShingler returns a Shingler using windows of the given number of
// words; non-positive sizes fall back to DefaultSize.
func NewShingler(size int) *Shingler {
	if size <= 0 {
		size = DefaultSize
	}
	return &Shingler{size: size}
}

// Size reports the shingle width in words.
func (s *Shingler) Size() int { return s.size }

// Tokenize lower-cases text and splits it into maximal runs of letters and
// digits. Punctuation and other separators are discarded, mirroring the
// "meaningful region" normalisation of page checkers.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Shingle computes the hashed shingle set of text. Texts shorter than the
// window contribute a single shingle covering all their tokens, so that
// short but identical labels still resemble each other; empty text yields
// an empty set.
func (s *Shingler) Shingle(text string) Set {
	tokens := Tokenize(text)
	out := make(Set)
	if len(tokens) == 0 {
		return out
	}
	w := s.size
	if len(tokens) < w {
		out[hashTokens(tokens)] = struct{}{}
		return out
	}
	for i := 0; i+w <= len(tokens); i++ {
		out[hashTokens(tokens[i:i+w])] = struct{}{}
	}
	return out
}

func hashTokens(tokens []string) uint64 {
	h := fnv.New64a()
	for i, tok := range tokens {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(tok))
	}
	return h.Sum64()
}

// Resemblance is the Jaccard coefficient |A ∩ B| / |A ∪ B| of two shingle
// sets, the similarity measure of [8]. Two empty sets resemble fully (1);
// one empty set resembles nothing (0).
func Resemblance(a, b Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for h := range small {
		if _, ok := large[h]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Containment is |A ∩ B| / |A|: how much of a is covered by b. Broder's
// companion measure to resemblance; useful when a pattern page should be
// subsumed by a data page rather than equal to it.
func Containment(a, b Set) float64 {
	if len(a) == 0 {
		return 1
	}
	inter := 0
	for h := range a {
		if _, ok := b[h]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}

// Similarity is a convenience that shingles both texts with the default
// window and returns their resemblance.
func Similarity(a, b string) float64 {
	s := NewShingler(DefaultSize)
	return Resemblance(s.Shingle(a), s.Shingle(b))
}
