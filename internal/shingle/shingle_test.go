package shingle

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42 foo-bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ,.;  "); len(got) != 0 {
		t.Fatalf("Tokenize punctuation = %v, want empty", got)
	}
}

func TestShingleCounts(t *testing.T) {
	s := NewShingler(3)
	// 5 tokens, window 3 → 3 shingles.
	set := s.Shingle("a b c d e")
	if len(set) != 3 {
		t.Fatalf("shingles = %d, want 3", len(set))
	}
}

func TestShingleShortText(t *testing.T) {
	s := NewShingler(4)
	set := s.Shingle("just two")
	if len(set) != 1 {
		t.Fatalf("short text shingles = %d, want 1", len(set))
	}
	if len(s.Shingle("")) != 0 {
		t.Fatal("empty text should have no shingles")
	}
}

func TestDefaultSize(t *testing.T) {
	if NewShingler(0).Size() != DefaultSize {
		t.Error("zero size should fall back to default")
	}
	if NewShingler(-3).Size() != DefaultSize {
		t.Error("negative size should fall back to default")
	}
	if NewShingler(7).Size() != 7 {
		t.Error("explicit size ignored")
	}
}

func TestResemblanceIdentical(t *testing.T) {
	s := NewShingler(3)
	text := "the quick brown fox jumps over the lazy dog"
	a := s.Shingle(text)
	if got := Resemblance(a, a); got != 1 {
		t.Fatalf("self resemblance = %v, want 1", got)
	}
}

func TestResemblanceDisjoint(t *testing.T) {
	s := NewShingler(2)
	a := s.Shingle("alpha beta gamma")
	b := s.Shingle("one two three")
	if got := Resemblance(a, b); got != 0 {
		t.Fatalf("disjoint resemblance = %v, want 0", got)
	}
}

func TestResemblanceEmpty(t *testing.T) {
	if Resemblance(Set{}, Set{}) != 1 {
		t.Error("two empty sets should resemble 1")
	}
	s := NewShingler(2)
	if Resemblance(Set{}, s.Shingle("a b c")) != 0 {
		t.Error("empty vs nonempty should resemble 0")
	}
}

func TestResemblancePartial(t *testing.T) {
	s := NewShingler(2)
	a := s.Shingle("a b c")   // shingles: ab, bc
	b := s.Shingle("a b c d") // shingles: ab, bc, cd
	got := Resemblance(a, b)  // 2/3
	if got < 0.66 || got > 0.67 {
		t.Fatalf("partial resemblance = %v, want ≈ 2/3", got)
	}
}

func TestResemblanceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randText(rng, 30)
		b := randText(rng, 30)
		s := NewShingler(3)
		sa, sb := s.Shingle(a), s.Shingle(b)
		return Resemblance(sa, sb) == Resemblance(sb, sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResemblanceRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewShingler(2)
		a := s.Shingle(randText(rng, 20))
		b := s.Shingle(randText(rng, 20))
		r := Resemblance(a, b)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestContainment(t *testing.T) {
	s := NewShingler(2)
	small := s.Shingle("a b c")
	big := s.Shingle("a b c d e f")
	if got := Containment(small, big); got != 1 {
		t.Fatalf("containment of prefix = %v, want 1", got)
	}
	if got := Containment(big, small); got >= 1 {
		t.Fatalf("containment of superset in subset = %v, want < 1", got)
	}
	if Containment(Set{}, big) != 1 {
		t.Error("empty set containment should be 1")
	}
}

func TestSimilarityConvenience(t *testing.T) {
	if got := Similarity("books about science", "books about science"); got != 1 {
		t.Fatalf("identical similarity = %v, want 1", got)
	}
	if got := Similarity("books about science", "entirely different words here"); got != 0 {
		t.Fatalf("disjoint similarity = %v, want 0", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	if Similarity("The Quick Brown Fox", "the quick brown fox") != 1 {
		t.Error("shingling should be case-insensitive")
	}
}

func randText(rng *rand.Rand, n int) string {
	words := []string{"book", "store", "news", "page", "item", "sale", "data", "graph", "web", "link"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[rng.Intn(len(words))])
	}
	return b.String()
}

// TestContainmentEdgeCases pins the divide-by-zero guards the search
// subsystem's scoring relies on: empty and nil sets must score without
// arithmetic panics, mirroring Resemblance's conventions.
func TestContainmentEdgeCases(t *testing.T) {
	s := NewShingler(4)
	full := s.Shingle("one two three four five six")
	if got := Containment(Set{}, full); got != 1 {
		t.Fatalf("Containment(empty, full) = %v, want 1", got)
	}
	if got := Containment(Set{}, Set{}); got != 1 {
		t.Fatalf("Containment(empty, empty) = %v, want 1", got)
	}
	if got := Containment(full, Set{}); got != 0 {
		t.Fatalf("Containment(full, empty) = %v, want 0", got)
	}
	// Nil maps behave as empty sets.
	if got := Containment(nil, full); got != 1 {
		t.Fatalf("Containment(nil, full) = %v, want 1", got)
	}
	if got := Containment(full, nil); got != 0 {
		t.Fatalf("Containment(full, nil) = %v, want 0", got)
	}
	if got := Resemblance(nil, nil); got != 1 {
		t.Fatalf("Resemblance(nil, nil) = %v, want 1", got)
	}
	if got := Resemblance(nil, full); got != 0 {
		t.Fatalf("Resemblance(nil, full) = %v, want 0", got)
	}
}

// TestZeroSizeShingler checks that degenerate window sizes fall back
// to the default instead of producing zero-width shingles.
func TestZeroSizeShingler(t *testing.T) {
	for _, size := range []int{0, -1, -100} {
		s := NewShingler(size)
		if s.Size() != DefaultSize {
			t.Fatalf("NewShingler(%d).Size() = %d, want %d", size, s.Size(), DefaultSize)
		}
		set := s.Shingle("a b c d e f g")
		if len(set) == 0 {
			t.Fatalf("NewShingler(%d) produced no shingles", size)
		}
		if got := Resemblance(set, set); got != 1 {
			t.Fatalf("self resemblance = %v", got)
		}
	}
	if set := NewShingler(0).Shingle(""); len(set) != 0 {
		t.Fatalf("empty text shingled to %d entries", len(set))
	}
	if set := NewShingler(0).Shingle("..., !!"); len(set) != 0 {
		t.Fatalf("punctuation-only text shingled to %d entries", len(set))
	}
}
