package shingle

import "testing"

// FuzzResemblance checks metric axioms on arbitrary text inputs: scores
// stay in [0, 1], are symmetric, and identical texts score 1.
func FuzzResemblance(f *testing.F) {
	f.Add("the quick brown fox", "the quick brown fox jumps", 3)
	f.Add("", "anything here", 2)
	f.Add("ünïcödé wörds über alles", "ünïcödé wörds", 1)
	f.Fuzz(func(t *testing.T, a, b string, size int) {
		if size < 0 || size > 32 {
			return
		}
		s := NewShingler(size)
		sa, sb := s.Shingle(a), s.Shingle(b)
		r := Resemblance(sa, sb)
		if r < 0 || r > 1 {
			t.Fatalf("resemblance out of range: %v", r)
		}
		if Resemblance(sb, sa) != r {
			t.Fatal("resemblance asymmetric")
		}
		if Resemblance(sa, sa) != 1 {
			t.Fatal("self-resemblance != 1")
		}
		c := Containment(sa, sb)
		if c < 0 || c > 1 {
			t.Fatalf("containment out of range: %v", c)
		}
	})
}
