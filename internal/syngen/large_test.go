package syngen

import (
	"testing"

	"graphmatch/internal/graph"
)

func TestGenerateLargeShape(t *testing.T) {
	cfg := LargeConfig{Nodes: 4000, AvgDeg: 4, Labels: 64, CoreFraction: 0.8, Seed: 7}
	g := GenerateLarge(cfg)
	if g.NumNodes() != cfg.Nodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), cfg.Nodes)
	}
	if g.NumEdges() < cfg.Nodes*cfg.AvgDeg/2 {
		t.Fatalf("edges = %d, implausibly few for avg degree %d", g.NumEdges(), cfg.AvgDeg)
	}
	// The SCC condensation must collapse at least the wired core: k
	// bounded by the fringe plus one.
	scc := g.SCC()
	maxComponents := cfg.Nodes - int(cfg.CoreFraction*float64(cfg.Nodes)) + 1
	if k := scc.NumComponents(); k > maxComponents {
		t.Fatalf("condensation has %d components, want ≤ %d (core must form one SCC)", k, maxComponents)
	}
	// One component holds at least the core.
	biggest := 0
	for _, m := range scc.Members {
		if len(m) > biggest {
			biggest = len(m)
		}
	}
	if biggest < int(cfg.CoreFraction*float64(cfg.Nodes)) {
		t.Fatalf("largest SCC has %d members, want ≥ the %d-node core", biggest, int(cfg.CoreFraction*float64(cfg.Nodes)))
	}
}

func TestGenerateLargeDeterministic(t *testing.T) {
	cfg := LargeConfig{Nodes: 500, Seed: 3}
	if !graph.Equal(GenerateLarge(cfg), GenerateLarge(cfg)) {
		t.Fatal("equal configs must generate equal graphs")
	}
	other := GenerateLarge(LargeConfig{Nodes: 500, Seed: 4})
	if graph.Equal(GenerateLarge(cfg), other) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateLargePowerLawTail(t *testing.T) {
	// Preferential attachment must concentrate in-degree: the top 1% of
	// nodes should hold several times their uniform share of edges.
	g := GenerateLarge(LargeConfig{Nodes: 5000, AvgDeg: 5, CoreFraction: 0.5, Seed: 11})
	indeg := make([]int, g.NumNodes())
	total := 0
	g.Edges(func(from, to graph.NodeID) bool {
		indeg[to]++
		total++
		return true
	})
	top := 0
	k := g.NumNodes() / 100
	for i := 0; i < k; i++ {
		best, bestAt := -1, -1
		for v, d := range indeg {
			if d > best {
				best, bestAt = d, v
			}
		}
		top += best
		indeg[bestAt] = -1
	}
	if float64(top) < 3*float64(total)/100 {
		t.Fatalf("top 1%% of nodes hold %d/%d in-edges — no power-law concentration", top, total)
	}
}

func TestCarvePattern(t *testing.T) {
	g := GenerateLarge(LargeConfig{Nodes: 2000, Seed: 5})
	p := CarvePattern(g, 12, 9)
	if p.NumNodes() != 12 {
		t.Fatalf("pattern nodes = %d, want 12", p.NumNodes())
	}
	if p.NumEdges() == 0 {
		t.Fatal("carved pattern has no edges to match against")
	}
}
