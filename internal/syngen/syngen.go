// Package syngen generates the synthetic workloads of Section 6 (2):
//
//	"Given m, we first randomly generated a graph pattern G1 with m nodes
//	and 4×m edges. We then produced a set of 15 graphs G2 by introducing
//	noise into G1 [...]: (a) for each edge in G1, with probability noise%,
//	the edge was replaced with a path of from 1 to 5 nodes, and (b) each
//	node in G1 was attached with a subgraph of at most 10 nodes, with
//	probability noise%. The nodes were tagged with labels randomly drawn
//	from a set L of 5×m distinct labels. The set L was divided into
//	√(5×m) disjoint groups. Labels in different groups were considered
//	totally different, while labels in the same group were assigned
//	similarities randomly drawn from [0, 1]."
//
// Every generated G2 contains G1's nodes verbatim (same labels) with each
// original edge turned into an edge or path, so the identity-style mapping
// is a full p-hom mapping and the pair is guaranteed to match — the ground
// truth behind the paper's accuracy measure.
//
// In-group label similarities are produced by a deterministic pseudo-random
// function of (seed, label, label) rather than a materialised table, so a
// workload's similarity matrix costs O(1) memory and is reproducible.
package syngen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Config parameterises a workload. Zero values select the paper's
// defaults where they exist.
type Config struct {
	// M is the number of nodes in the pattern G1.
	M int
	// NoisePercent is the noise rate in percent (the paper varies 2–20).
	NoisePercent float64
	// NumData is the number of data graphs G2 to derive (default 15).
	NumData int
	// EdgeFactor is |E1| / |V1| (default 4, the paper's 4×m).
	EdgeFactor int
	// Seed drives all randomness; equal configs generate equal workloads.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumData == 0 {
		c.NumData = 15
	}
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 4
	}
	return c
}

// Workload is a generated pattern with its derived data graphs and the
// label-similarity model.
type Workload struct {
	Config Config
	G1     *graph.Graph
	G2s    []*graph.Graph
	// Truth[i][v] is the data-graph node holding the copy of pattern node
	// v inside G2s[i] — the ground-truth embedding that guarantees each
	// pair matches. Node IDs of every data graph are randomly permuted so
	// that ID order leaks nothing about this embedding.
	Truth [][]graph.NodeID

	labels    []string
	groupOf   map[string]int
	groupSize int
	simSeed   int64
}

// Generate builds a workload from cfg.
func Generate(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	numLabels := 5 * cfg.M
	if numLabels < 1 {
		numLabels = 1
	}
	groupSize := int(math.Sqrt(float64(numLabels)))
	if groupSize < 1 {
		groupSize = 1
	}
	w := &Workload{
		Config:    cfg,
		labels:    make([]string, numLabels),
		groupOf:   make(map[string]int, numLabels),
		groupSize: groupSize,
		simSeed:   cfg.Seed ^ 0x5DEECE66D,
	}
	for i := range w.labels {
		l := fmt.Sprintf("l%d", i)
		w.labels[i] = l
		w.groupOf[l] = i / groupSize
	}

	w.G1 = w.generatePattern(rng)
	for i := 0; i < cfg.NumData; i++ {
		g2, truth := w.deriveData(rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)))
		w.G2s = append(w.G2s, g2)
		w.Truth = append(w.Truth, truth)
	}
	return w
}

func (w *Workload) randomLabel(rng *rand.Rand) string {
	return w.labels[rng.Intn(len(w.labels))]
}

// generatePattern builds G1: m nodes, EdgeFactor·m distinct random edges
// (no self-loops, which would demand cycles in the data).
func (w *Workload) generatePattern(rng *rand.Rand) *graph.Graph {
	m := w.Config.M
	g := graph.New(m)
	for i := 0; i < m; i++ {
		g.AddNode(w.randomLabel(rng))
	}
	want := w.Config.EdgeFactor * m
	maxPossible := m * (m - 1)
	if want > maxPossible {
		want = maxPossible
	}
	have := 0
	for have < want {
		from := graph.NodeID(rng.Intn(m))
		to := graph.NodeID(rng.Intn(m))
		if from == to || g.HasEdge(from, to) {
			continue
		}
		g.AddEdge(from, to)
		have++
	}
	g.Finish()
	return g
}

// deriveData builds one G2 from G1 under the noise model and returns it
// together with the ground-truth embedding of G1's nodes. The graph is
// built copies-first and then node-permuted, so the returned IDs are
// scattered.
func (w *Workload) deriveData(rng *rand.Rand) (*graph.Graph, []graph.NodeID) {
	g1 := w.G1
	m := g1.NumNodes()
	noise := w.Config.NoisePercent / 100

	g2 := graph.New(m * 2)
	for v := 0; v < m; v++ {
		g2.AddNode(g1.Label(graph.NodeID(v)))
	}
	// (a) Edges survive or stretch into paths of 1–5 fresh nodes.
	g1.Edges(func(from, to graph.NodeID) bool {
		if rng.Float64() >= noise {
			g2.AddEdge(from, to)
			return true
		}
		hops := 1 + rng.Intn(5)
		prev := from
		for i := 0; i < hops; i++ {
			mid := g2.AddNode(w.randomLabel(rng))
			g2.AddEdge(prev, mid)
			prev = mid
		}
		g2.AddEdge(prev, to)
		return true
	})
	// (b) Decoy subgraphs of at most 10 nodes hang off original nodes.
	for v := 0; v < m; v++ {
		if rng.Float64() >= noise {
			continue
		}
		size := 1 + rng.Intn(10)
		members := make([]graph.NodeID, 0, size)
		for i := 0; i < size; i++ {
			members = append(members, g2.AddNode(w.randomLabel(rng)))
		}
		// Attach the subgraph root to the original node and wire a few
		// random internal edges so the decoy has structure.
		g2.AddEdge(graph.NodeID(v), members[0])
		for i := 1; i < size; i++ {
			g2.AddEdge(members[rng.Intn(i)], members[i])
		}
	}
	g2.Finish()
	// Scatter node IDs: without this, the copies occupy IDs 0..m-1 and a
	// lowest-ID candidate pick would accidentally act as an oracle.
	perm := rng.Perm(g2.NumNodes())
	shuffled := graph.New(g2.NumNodes())
	inv := make([]graph.NodeID, g2.NumNodes())
	for newID, oldID := range invertPerm(perm) {
		id := shuffled.AddNodeFull(g2.Node(graph.NodeID(oldID)))
		inv[oldID] = id
		_ = newID
	}
	g2.Edges(func(from, to graph.NodeID) bool {
		shuffled.AddEdge(inv[from], inv[to])
		return true
	})
	shuffled.Finish()
	truth := make([]graph.NodeID, m)
	for v := 0; v < m; v++ {
		truth[v] = inv[v]
	}
	return shuffled, truth
}

// invertPerm returns the slice s with s[newID] = oldID given perm with
// perm[oldID] = newID.
func invertPerm(perm []int) []int {
	s := make([]int, len(perm))
	for oldID, newID := range perm {
		s[newID] = oldID
	}
	return s
}

// Matrix returns the similarity matrix mat() between G1 and the given data
// graph under the grouped-label model.
func (w *Workload) Matrix(g2 *graph.Graph) simmatrix.Matrix {
	return &groupedHash{g1: w.G1, g2: g2, w: w}
}

// LabelSimilarity exposes the label-level similarity model: 1 for equal
// labels, 0 across groups, and a deterministic pseudo-random [0, 1] draw
// inside a group.
func (w *Workload) LabelSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	ga, oka := w.groupOf[a]
	gb, okb := w.groupOf[b]
	if !oka || !okb || ga != gb {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", w.simSeed, a, b)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

type groupedHash struct {
	g1, g2 *graph.Graph
	w      *Workload
}

func (m *groupedHash) Score(v, u graph.NodeID) float64 {
	return m.w.LabelSimilarity(m.g1.Label(v), m.g2.Label(u))
}
