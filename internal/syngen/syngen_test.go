package syngen

import (
	"testing"

	"graphmatch/internal/core"
	"graphmatch/internal/graph"
)

func TestGenerateSizes(t *testing.T) {
	w := Generate(Config{M: 100, NoisePercent: 10, Seed: 1})
	if w.G1.NumNodes() != 100 {
		t.Fatalf("|V1| = %d, want 100", w.G1.NumNodes())
	}
	if w.G1.NumEdges() != 400 {
		t.Fatalf("|E1| = %d, want 400", w.G1.NumEdges())
	}
	if len(w.G2s) != 15 {
		t.Fatalf("data graphs = %d, want 15", len(w.G2s))
	}
	for i, g2 := range w.G2s {
		if g2.NumNodes() < 100 {
			t.Fatalf("G2[%d] smaller than G1", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(Config{M: 50, NoisePercent: 15, Seed: 7})
	b := Generate(Config{M: 50, NoisePercent: 15, Seed: 7})
	if !graph.Equal(a.G1, b.G1) {
		t.Fatal("same seed must generate the same pattern")
	}
	for i := range a.G2s {
		if !graph.Equal(a.G2s[i], b.G2s[i]) {
			t.Fatalf("same seed must generate the same data graph %d", i)
		}
	}
	if a.LabelSimilarity("l1", "l2") != b.LabelSimilarity("l1", "l2") {
		t.Fatal("label similarity must be deterministic")
	}
	c := Generate(Config{M: 50, NoisePercent: 15, Seed: 8})
	if graph.Equal(a.G1, c.G1) {
		t.Fatal("different seeds should differ (overwhelmingly)")
	}
}

func TestNoSelfLoopsInPattern(t *testing.T) {
	w := Generate(Config{M: 80, NoisePercent: 20, Seed: 3})
	w.G1.Edges(func(from, to graph.NodeID) bool {
		if from == to {
			t.Fatalf("pattern has self-loop at %d", from)
		}
		return true
	})
}

func TestNoiseZeroKeepsGraphIdentical(t *testing.T) {
	w := Generate(Config{M: 40, NoisePercent: 0, Seed: 5})
	for _, g2 := range w.G2s {
		if g2.NumNodes() != 40 || g2.NumEdges() != w.G1.NumEdges() {
			t.Fatalf("noise 0 should copy the pattern: %s vs %s", g2, w.G1)
		}
	}
}

func TestNoiseGrowsGraph(t *testing.T) {
	w := Generate(Config{M: 100, NoisePercent: 20, Seed: 9})
	grew := 0
	for _, g2 := range w.G2s {
		if g2.NumNodes() > 100 {
			grew++
		}
	}
	if grew < len(w.G2s)-1 {
		t.Fatalf("20%% noise should grow nearly all data graphs, grew %d/%d", grew, len(w.G2s))
	}
}

func TestGroundTruthMappingValid(t *testing.T) {
	// The recorded embedding must be a valid full 1-1 p-hom mapping: by
	// construction every pattern edge survives as an edge or path.
	w := Generate(Config{M: 60, NoisePercent: 30, Seed: 11})
	for i, g2 := range w.G2s[:5] {
		in := core.NewInstance(w.G1, g2, w.Matrix(g2), 0.75)
		m := core.Mapping{}
		for v, u := range w.Truth[i] {
			m[graph.NodeID(v)] = u
		}
		if err := in.CheckMapping(m, true); err != nil {
			t.Fatalf("G2[%d]: ground truth mapping invalid: %v", i, err)
		}
		if in.QualCard(m) != 1 {
			t.Fatalf("G2[%d]: ground truth not full", i)
		}
	}
}

func TestNodeIDsCarryNoSignal(t *testing.T) {
	// The ground-truth embedding must not be the identity prefix — data
	// node IDs are shuffled.
	w := Generate(Config{M: 50, NoisePercent: 10, Seed: 19})
	identity := 0
	for v, u := range w.Truth[0] {
		if graph.NodeID(v) == u {
			identity++
		}
	}
	if identity > 25 {
		t.Fatalf("%d/50 ground-truth pairs are identity — IDs leak the embedding", identity)
	}
}

func TestLabelSimilarityModel(t *testing.T) {
	w := Generate(Config{M: 100, NoisePercent: 10, Seed: 13})
	if w.LabelSimilarity("l5", "l5") != 1 {
		t.Error("identical labels must score 1")
	}
	// Group size is √500 ≈ 22: l0 and l1 share group 0; l0 and l499 don't.
	if got := w.LabelSimilarity("l0", "l499"); got != 0 {
		t.Errorf("cross-group similarity = %v, want 0", got)
	}
	s := w.LabelSimilarity("l0", "l1")
	if s < 0 || s > 1 {
		t.Errorf("in-group similarity out of range: %v", s)
	}
	if w.LabelSimilarity("l0", "l1") != w.LabelSimilarity("l1", "l0") {
		t.Error("label similarity must be symmetric")
	}
	if w.LabelSimilarity("l0", "unknown") != 0 {
		t.Error("unknown labels must score 0")
	}
}

func TestAlgorithmsFindMatchOnLowNoise(t *testing.T) {
	// End-to-end sanity: at low noise the approximation algorithms should
	// reach the 0.75 match bar on most data graphs.
	w := Generate(Config{M: 40, NoisePercent: 5, NumData: 5, Seed: 17})
	matched := 0
	for _, g2 := range w.G2s {
		in := core.NewInstance(w.G1, g2, w.Matrix(g2), 0.75)
		m := in.CompMaxCard()
		if err := in.CheckMapping(m, false); err != nil {
			t.Fatal(err)
		}
		if in.QualCard(m) >= 0.75 {
			matched++
		}
	}
	if matched < 3 {
		t.Fatalf("only %d/5 matched at 5%% noise", matched)
	}
}

func TestSmallM(t *testing.T) {
	w := Generate(Config{M: 2, NoisePercent: 50, NumData: 2, Seed: 1})
	if w.G1.NumNodes() != 2 {
		t.Fatalf("tiny pattern size = %d", w.G1.NumNodes())
	}
	// Edge cap: 2 nodes allow at most 2 directed edges.
	if w.G1.NumEdges() > 2 {
		t.Fatalf("tiny pattern edges = %d", w.G1.NumEdges())
	}
}
