package syngen

import (
	"fmt"
	"math/rand"

	"graphmatch/internal/graph"
)

// Large-graph generator for the serving-scale workloads the paper's
// Section 6 generator cannot reach: its noise model derives each G2
// from a pattern, which caps realistic sizes at a few thousand nodes.
// GenerateLarge instead grows a standalone data graph with the
// "bow-tie" shape production webgraphs take — one large strongly
// connected core, an IN tendril of source-only nodes feeding it, an
// OUT tendril of sink-only nodes fed by it, and power-law in-degrees
// via preferential attachment.
//
// That shape matters beyond realism: the candidate-sparse reachability
// tier stores the closure SCC-condensed, O(k²) bits in the number of
// components k. Here the core is provably one SCC (it is ring-wired)
// and every tendril node is provably a singleton (IN nodes receive no
// edges, OUT nodes emit none), so k = (1 − CoreFraction)·Nodes + 1
// exactly — small enough that the sparse closure fits in megabytes
// where dense per-node rows would need gigabytes, yet large enough
// that the catalog's auto policy genuinely selects the sparse tier.
// GenerateLarge is how datagen and benchcore exercise that regime end
// to end.

// LargeConfig parameterises GenerateLarge. Zero values select
// defaults.
type LargeConfig struct {
	// Nodes is the graph size (default 100000).
	Nodes int
	// AvgDeg is the average out-degree of the attachment edges
	// (default 5).
	AvgDeg int
	// Labels is the size of the label universe; labels are drawn
	// uniformly, so each carries ≈ Nodes/Labels candidates for a
	// label-equality match (default 2000).
	Labels int
	// CoreFraction is the fraction of nodes wired into the strongly
	// connected core (default 0.9). The SCC condensation then has
	// roughly (1−CoreFraction)·Nodes + 1 components, the k that sizes
	// the sparse closure.
	CoreFraction float64
	// Seed drives all randomness; equal configs generate equal graphs.
	Seed int64
}

func (c LargeConfig) withDefaults() LargeConfig {
	if c.Nodes <= 0 {
		c.Nodes = 100000
	}
	if c.AvgDeg <= 0 {
		c.AvgDeg = 5
	}
	if c.Labels <= 0 {
		c.Labels = 2000
	}
	if c.CoreFraction <= 0 || c.CoreFraction > 1 {
		c.CoreFraction = 0.9
	}
	return c
}

// GenerateLarge builds one power-law data graph from cfg.
func GenerateLarge(cfg LargeConfig) *graph.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes

	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("l%d", rng.Intn(cfg.Labels)))
	}

	// The strongly connected core: a random subset wired into one cycle,
	// so its members provably share one SCC whatever the attachment
	// edges do. Membership is a random permutation prefix — core and
	// tendril nodes are scattered across the ID space, leaking nothing
	// to ID-ordered candidate picks. The remaining nodes split into the
	// IN tendril (only ever edge sources) and the OUT tendril (only
	// ever edge targets), so each is a singleton SCC by construction.
	coreSize := int(cfg.CoreFraction * float64(n))
	if coreSize > n {
		coreSize = n
	}
	perm := rng.Perm(n)
	core := perm[:coreSize]
	fringe := perm[coreSize:]
	inT := fringe[:len(fringe)/2]
	outT := fringe[len(fringe)/2:]
	sources := append(append([]int(nil), core...), inT...)
	uniformTargets := append(append([]int(nil), core...), outT...)
	for i, v := range core {
		g.AddEdge(graph.NodeID(v), graph.NodeID(core[(i+1)%len(core)]))
	}

	// Preferential attachment: targets are re-drawn from earlier
	// targets with probability ¾ (mass proportional to current
	// in-degree — the classic repeated-endpoint trick) and uniformly
	// from the permissible targets otherwise, yielding a power-law
	// in-degree tail over a uniform floor. Sources are uniform over the
	// permissible sources.
	targets := make([]graph.NodeID, 0, n*cfg.AvgDeg+coreSize)
	for _, v := range core {
		targets = append(targets, graph.NodeID(v))
	}
	for i := 0; len(sources) > 0 && len(uniformTargets) > 0 && i < n*cfg.AvgDeg; i++ {
		from := graph.NodeID(sources[rng.Intn(len(sources))])
		var to graph.NodeID
		if len(targets) > 0 && rng.Intn(4) > 0 {
			to = targets[rng.Intn(len(targets))]
		} else {
			to = graph.NodeID(uniformTargets[rng.Intn(len(uniformTargets))])
		}
		g.AddEdge(from, to)
		targets = append(targets, to)
	}
	g.Finish()
	return g
}

// CarvePattern samples a connected-ish pattern of the given size from a
// data graph by random node selection, preferring neighbours of nodes
// already chosen so the induced subgraph carries edges to match
// against. It is the pattern-side companion of GenerateLarge for
// benchmarks and smoke tests; ground-truth embeddings (the Section 6
// workloads' Truth) do not apply here.
func CarvePattern(g *graph.Graph, size int, seed int64) *graph.Graph {
	n := g.NumNodes()
	if size > n {
		size = n
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.NodeID]bool, size)
	keep := make([]graph.NodeID, 0, size)
	frontier := make([]graph.NodeID, 0, 4*size)
	add := func(v graph.NodeID) {
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
			frontier = append(frontier, g.Post(v)...)
		}
	}
	for len(keep) < size {
		if len(frontier) > 0 && rng.Intn(3) > 0 {
			i := rng.Intn(len(frontier))
			v := frontier[i]
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			add(v)
			continue
		}
		add(graph.NodeID(rng.Intn(n)))
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}
