// Package closure computes and indexes the transitive closure of directed
// graphs. The p-hom algorithms consult the closure of G2 constantly — the
// adjacency matrix H2 of G2+ in Fig. 3 answers "is there a nonempty path
// from u1 to u2?" in O(1) — so closure construction and representation
// dominate preprocessing cost.
//
// Two constructions are provided:
//
//   - Compute: an SCC-condensation algorithm in the style of Nuutila [22]
//     (the algorithm the paper cites): collapse SCCs with Tarjan, propagate
//     reachability bitsets over the condensation DAG in reverse topological
//     order, then read member reachability through component rows. Nodes in
//     a nontrivial SCC (or with a self-loop) reach themselves by a nonempty
//     path, which makes every SCC a clique in G2+ — the fact Appendix B's
//     compression exploits.
//
//   - ComputeBFS: a reference implementation running one BFS per node.
//     It is asymptotically worse but obviously correct; tests compare the
//     two and benchmarks quantify the gap (DESIGN.md ablation #5).
package closure

import (
	"context"

	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
)

// cancelCheckEvery is how many per-node (or per-component) build steps
// pass between context polls in the Ctx constructors: frequent enough
// that an abandoned build on a large graph stops within microseconds,
// rare enough that the poll never shows up in a profile.
const cancelCheckEvery = 256

// Reach indexes the transitive closure of a graph: Reachable(u, v) reports
// whether a nonempty path u ⇝ v exists. It is immutable once built and safe
// for concurrent readers.
type Reach struct {
	n int
	// comp[v] = component of v in the SCC condensation.
	comp []int
	// compReach[c] = bitset over components reachable from component c by a
	// path of length ≥ 1 in the condensation, including c itself iff c is
	// self-reaching (nontrivial SCC or self-loop).
	compReach []*bitset.Set
}

// Compute builds the closure index using SCC condensation and bitset
// propagation.
func Compute(g *graph.Graph) *Reach {
	r, _ := ComputeCtx(context.Background(), g)
	return r
}

// ComputeCtx is Compute with cooperative cancellation: the propagation
// loop polls ctx periodically and returns ctx's error when the caller
// gave up, so an abandoned request does not keep a worker pinned on a
// large closure build. A Background context makes it identical to
// Compute.
func ComputeCtx(ctx context.Context, g *graph.Graph) (*Reach, error) {
	dag, scc, selfReach := g.Condense()
	k := scc.NumComponents()
	compReach := make([]*bitset.Set, k)

	// Component indices from Tarjan are in reverse topological order:
	// an edge a→b between distinct components has Comp[a] > Comp[b]. So
	// processing components in increasing index order guarantees all
	// successors are finished first.
	for c := 0; c < k; c++ {
		if c%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := bitset.New(k)
		for _, succ := range dag.Post(graph.NodeID(c)) {
			row.Add(int(succ))
			row.Or(compReach[succ])
		}
		if selfReach[c] {
			row.Add(c)
		}
		compReach[c] = row
	}
	return &Reach{n: g.NumNodes(), comp: scc.Comp, compReach: compReach}, nil
}

// ComputeBounded builds a bounded reachability index: Reachable(u, v)
// holds iff a nonempty path of length at most maxLen exists. This backs
// the fixed-length path-matching variant (cf. Zou et al. [32] in the
// paper's related work): with maxLen = 1 the index degenerates to plain
// adjacency, turning p-hom into similarity-relaxed graph homomorphism.
// A non-positive maxLen means unbounded and defers to Compute.
func ComputeBounded(g *graph.Graph, maxLen int) *Reach {
	r, _ := ComputeBoundedCtx(context.Background(), g, maxLen)
	return r
}

// ComputeBoundedCtx is ComputeBounded with cooperative cancellation,
// polling ctx between per-node BFS passes (and deferring to ComputeCtx
// when maxLen means unbounded).
func ComputeBoundedCtx(ctx context.Context, g *graph.Graph, maxLen int) (*Reach, error) {
	if maxLen <= 0 {
		return ComputeCtx(ctx, g)
	}
	n := g.NumNodes()
	comp := make([]int, n)
	rows := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		if v%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		comp[v] = v
		row := bitset.New(n)
		// Level-bounded BFS from the successors of v.
		frontier := make([]graph.NodeID, 0, 8)
		for _, w := range g.Post(graph.NodeID(v)) {
			if !row.Contains(int(w)) {
				row.Add(int(w))
				frontier = append(frontier, w)
			}
		}
		for depth := 1; depth < maxLen && len(frontier) > 0; depth++ {
			var next []graph.NodeID
			for _, x := range frontier {
				for _, w := range g.Post(x) {
					if !row.Contains(int(w)) {
						row.Add(int(w))
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		rows[v] = row
	}
	return &Reach{n: n, comp: comp, compReach: rows}, nil
}

// ComputeBFS builds the closure index by running one truncated BFS per
// node. Exported for tests and ablation benchmarks.
func ComputeBFS(g *graph.Graph) *Reach {
	n := g.NumNodes()
	// Represent the result in the same component-based form with one
	// singleton component per node, so both constructions share Reachable.
	comp := make([]int, n)
	rows := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		comp[v] = v
		row := bitset.New(n)
		// BFS from successors so the empty path is excluded.
		queue := make([]graph.NodeID, 0, 8)
		for _, w := range g.Post(graph.NodeID(v)) {
			if !row.Contains(int(w)) {
				row.Add(int(w))
				queue = append(queue, w)
			}
		}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, w := range g.Post(x) {
				if !row.Contains(int(w)) {
					row.Add(int(w))
					queue = append(queue, w)
				}
			}
		}
		rows[v] = row
	}
	return &Reach{n: n, comp: comp, compReach: rows}
}

// NumNodes reports the number of nodes the index covers.
func (r *Reach) NumNodes() int { return r.n }

// NumComponents reports the number of components the index stores —
// the k that sizes the candidate-sparse tier's O(k²) footprint (equal
// to NumNodes for the per-node constructions ComputeBFS and
// ComputeBounded).
func (r *Reach) NumComponents() int { return len(r.compReach) }

// Reachable reports whether a nonempty path from u to v exists.
func (r *Reach) Reachable(u, v graph.NodeID) bool {
	return r.compReach[r.comp[u]].Contains(r.comp[v])
}

// ReachableSet returns the set of nodes reachable from u by a nonempty
// path, as a freshly allocated bitset over node IDs.
func (r *Reach) ReachableSet(u graph.NodeID) *bitset.Set {
	out := bitset.New(r.n)
	row := r.compReach[r.comp[u]]
	for v := 0; v < r.n; v++ {
		if row.Contains(r.comp[v]) {
			out.Add(v)
		}
	}
	return out
}

// CountEdges reports |E+|, the number of ordered pairs (u, v) with a
// nonempty path u ⇝ v. Quadratic; intended for tests and dataset reports.
func (r *Reach) CountEdges() int {
	c := 0
	for u := 0; u < r.n; u++ {
		row := r.compReach[r.comp[u]]
		for v := 0; v < r.n; v++ {
			if row.Contains(r.comp[v]) {
				c++
			}
		}
	}
	return c
}

// Graph materialises the closure as an explicit graph G+ with the same
// nodes as the original and an edge (u, v) for every nonempty path u ⇝ v.
// This is the construction the paper uses to make p-hom symmetric
// (Section 3.2 Remark: check G1+ ≼ G2) and in the SPH→WIS reduction.
func (r *Reach) Graph(original *graph.Graph) *graph.Graph {
	out := graph.New(r.n)
	for v := 0; v < r.n; v++ {
		out.AddNodeFull(original.Node(graph.NodeID(v)))
	}
	for u := 0; u < r.n; u++ {
		row := r.compReach[r.comp[u]]
		for v := 0; v < r.n; v++ {
			if row.Contains(r.comp[v]) {
				out.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	out.Finish()
	return out
}
