package closure

import (
	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
)

// Rows materialises a Reach index as dense bitset rows over node IDs in
// both directions: Fwd(u) is {w : u ⇝ w} and Bwd(u) is {w : w ⇝ u},
// each as a word-level bitset ready for And/AndNot sweeps. This is the
// dense tier of the Index abstraction — the representation the
// compMaxCard/compMaxSim inner loop consumes on small graphs (the trim
// of Fig. 4 intersects candidate sets against closure rows of G2+),
// factored out of the matcher so it can be built once per data graph
// and shared by every request instead of re-materialised per matcher.
// Beyond the auto-tier threshold the candidate-sparse CompIndex takes
// over (see index.go).
//
// Nodes in the same SCC have identical closure rows, so Rows allocates
// one row per component and aliases it across members; when the Reach
// index already stores one singleton component per node in ID order
// (the ComputeBFS/ComputeBounded shape), the forward rows alias the
// Reach rows directly with no copying at all.
//
// Rows is immutable once built and safe for concurrent readers. The
// returned row sets are shared — callers must never mutate them.
type Rows struct {
	n   int
	fwd []*bitset.Set // fwd[u] = {w : nonempty path u ⇝ w}
	bwd []*bitset.Set // bwd[u] = {w : nonempty path w ⇝ u}
	// ownedBytes approximates the heap held by rows allocated here
	// (excluding rows aliased from the Reach index), for cache
	// accounting.
	ownedBytes int
}

// NewRows expands a Reach index into forward and backward closure rows.
// The expansion is word-level where components have several members
// (member bitsets OR-combined along the component-level closure) and a
// per-bit relabel where every component is a singleton — O(reachable
// pairs) either way, never worse.
func NewRows(r *Reach) *Rows {
	n := r.n
	k := len(r.compReach)
	rw := &Rows{n: n}

	// Detect the identity component mapping (one singleton component
	// per node, in ID order) — the shape ComputeBFS and ComputeBounded
	// produce. There the component rows already are node rows.
	identity := k == n
	if identity {
		for v, c := range r.comp {
			if c != v {
				identity = false
				break
			}
		}
	}

	rowBytes := 8 * ((n + 63) / 64)

	// Component-level transpose: compBwd[d] = {c : d ∈ compReach[c]}.
	compBwd := make([]*bitset.Set, k)
	for d := range compBwd {
		compBwd[d] = bitset.New(k)
	}
	for c := 0; c < k; c++ {
		row := r.compReach[c]
		for d := row.Next(0); d >= 0; d = row.Next(d + 1) {
			compBwd[d].Add(c)
		}
	}

	var fwdByComp, bwdByComp []*bitset.Set
	switch {
	case identity:
		fwdByComp = r.compReach
		bwdByComp = compBwd
		rw.ownedBytes += k * rowBytes // compBwd
	case k == n:
		// Acyclic graph whose SCC pass numbered the (all singleton)
		// components out of ID order. Expanding a component row is then
		// a bit relabel through the inverse permutation — O(reachable
		// pairs) total, where the general member-OR expansion below
		// would pay O(n/64) words per reachable pair and dominate the
		// dense-tier build on long DAGs.
		member := make([]int, k)
		for v, c := range r.comp {
			member[c] = v
		}
		translate := func(compRows []*bitset.Set) []*bitset.Set {
			out := make([]*bitset.Set, k)
			for c := 0; c < k; c++ {
				row := bitset.New(n)
				cr := compRows[c]
				for d := cr.Next(0); d >= 0; d = cr.Next(d + 1) {
					row.Add(member[d])
				}
				out[c] = row
			}
			return out
		}
		fwdByComp = translate(r.compReach)
		bwdByComp = translate(compBwd)
		rw.ownedBytes += 2 * k * rowBytes
	default:
		// members[c] = bitset of the nodes in component c; expanding a
		// component row is then a word-level OR of member bitsets.
		members := make([]*bitset.Set, k)
		for c := range members {
			members[c] = bitset.New(n)
		}
		for v, c := range r.comp {
			members[c].Add(v)
		}
		expand := func(compRows []*bitset.Set) []*bitset.Set {
			out := make([]*bitset.Set, k)
			for c := 0; c < k; c++ {
				row := bitset.New(n)
				cr := compRows[c]
				for d := cr.Next(0); d >= 0; d = cr.Next(d + 1) {
					row.Or(members[d])
				}
				out[c] = row
			}
			return out
		}
		fwdByComp = expand(r.compReach)
		bwdByComp = expand(compBwd)
		rw.ownedBytes += 2 * k * rowBytes
	}

	rw.fwd = make([]*bitset.Set, n)
	rw.bwd = make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		rw.fwd[v] = fwdByComp[r.comp[v]]
		rw.bwd[v] = bwdByComp[r.comp[v]]
	}
	rw.ownedBytes += 2 * n * 8 // the fwd/bwd pointer slices
	return rw
}

// NumNodes reports the number of nodes the rows cover.
func (rw *Rows) NumNodes() int { return rw.n }

// Fwd returns the forward closure row of u: {w : u ⇝ w}. Shared and
// immutable — do not modify.
func (rw *Rows) Fwd(u graph.NodeID) *bitset.Set { return rw.fwd[u] }

// Bwd returns the backward closure row of u: {w : w ⇝ u}. Shared and
// immutable — do not modify.
func (rw *Rows) Bwd(u graph.NodeID) *bitset.Set { return rw.bwd[u] }

// Bytes approximates the heap bytes held by the rows beyond what the
// underlying Reach index already accounts for. Used by the catalog's
// cache memory accounting.
func (rw *Rows) Bytes() int { return rw.ownedBytes }

// Bytes approximates the heap bytes held by the Reach index: the
// component assignment plus the component reachability rows. Used by
// the catalog's cache accounting.
func (r *Reach) Bytes() int {
	k := len(r.compReach)
	return 8*r.n + k*8*((k+63)/64)
}
