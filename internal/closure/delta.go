package closure

import (
	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
)

// This file implements incremental closure maintenance — the classic
// follow-up to Fan et al.'s matching machinery: instead of re-running the
// O(n·m) condensation DFS on every graph.Patch, the cached Reach index is
// patched in place.
//
//   - Edge insert (u, v) that does not merge SCCs: the new reachable set
//     {comp(v)} ∪ row(comp(v)) is unioned into the row of every ancestor
//     of comp(u) (and comp(u) itself). Ancestors already containing
//     comp(v) are skipped in O(1): closure consistency (c ∈ row(a) ⇒
//     row(c) ⊆ row(a)) is maintained inductively by every update here,
//     so containing the bit implies containing the whole row.
//
//   - Edge insert that merges SCCs (comp(v) already reaches comp(u)):
//     the condensation itself changes shape; ApplyEdges reports failure
//     and the caller falls back to a full rebuild.
//
//   - Edge delete: only the "cone" of ancestors of the deleted edge's
//     source component can lose reachability. Those rows are recomputed
//     in post-order over the (still acyclic) condensation, reusing the
//     untouched rows of every component outside the cone. Deleting an
//     edge internal to an SCC triggers a strong-connectivity check of
//     the component; if the SCC splits, ApplyEdges falls back.
//
// Every step charges an approximate work cost against a budget; when the
// delta cone grows past the point where an incremental update would cost
// as much as rebuilding, ApplyEdges gives up and the caller rebuilds.
//
// The update is copy-on-write: the receiver is never modified, untouched
// component rows are shared between the old and new index, and (for
// edge-only patches) the component assignment slice is shared wholesale.

// Delta reports what an incremental closure update touched, for cache
// accounting and observability.
type Delta struct {
	// Dirty lists the components whose reachability rows were rewritten
	// (a superset of the components whose rows actually changed).
	Dirty []int
	// AddedComps counts the fresh singleton components appended for new
	// nodes.
	AddedComps int
	// Cost is the accumulated work estimate, in probe/word units.
	Cost int
}

// ConeSize reports the number of component rows the update rewrote —
// the "delta cone" the metrics histogram tracks.
func (d *Delta) ConeSize() int { return len(d.Dirty) }

// ApplyEdges incrementally updates the closure for a patch against g0,
// the graph the receiver was computed from: addedNodes nodes appended
// (each becoming a fresh singleton component, with no edges until adds
// wire them), then all of dels removed, then each of adds inserted in
// order — the application order of graph.ApplyPatch. The receiver must
// be an exact unbounded closure of g0 (the Compute/ComputeBFS shape,
// not a length-bounded index).
//
// On success it returns a new Reach equivalent to recomputing the
// closure of the patched graph, sharing untouched rows with the
// receiver, plus a Delta describing the work done. It returns ok=false
// — with the receiver untouched — when the update cannot be done
// incrementally (an insert merges SCCs, a delete splits one) or when
// the accumulated cost exceeds budget (non-positive budget means half
// the estimated full-rebuild cost). The caller then rebuilds.
func (r *Reach) ApplyEdges(g0 *graph.Graph, addedNodes int, dels, adds [][2]graph.NodeID, budget int) (*Reach, *Delta, bool) {
	n0 := r.n
	if g0.NumNodes() != n0 || addedNodes < 0 {
		return nil, nil, false
	}
	k0 := len(r.compReach)
	k2 := k0 + addedNodes
	n2 := n0 + addedNodes
	if budget <= 0 {
		// Estimate the full-rebuild cost the fallback would pay: the
		// condensation DFS visits every node and edge, and the closure
		// propagation unions one k-bit row per condensation edge —
		// bounded by the edge count (duplicates collapse, so this
		// overshoots; halving compensates). The old k²/64 matrix term
		// undershot by an order of magnitude on bow-tie graphs (many
		// condensation edges, few components squared), rejecting
		// incremental updates twenty times cheaper than the rebuild
		// they were traded for.
		budget = (n0 + g0.NumEdges()*(k0/64+2)) / 2
		if budget < 1024 {
			budget = 1024
		}
	}
	cost := 0
	charge := func(c int) bool { cost += c; return cost <= budget }
	wordsPerRow := k2/64 + 1

	// Extend the component assignment for appended nodes; edge-only
	// patches share the receiver's slice.
	comp := r.comp
	if addedNodes > 0 {
		comp = make([]int, n2)
		copy(comp, r.comp)
		for i := 0; i < addedNodes; i++ {
			comp[n0+i] = k0 + i
		}
	}

	// All rows grow to a uniform capacity of k2 components, keeping the
	// sparse tier's probe loop branch-free. Grown shares the underlying
	// words when the word count is unchanged, so growth is usually a
	// header rewrap, not a copy; either way the words are shared with
	// the receiver until own() clones them.
	rows := make([]*bitset.Set, k2)
	owned := make([]bool, k2)
	if addedNodes == 0 {
		copy(rows, r.compReach)
	} else {
		for c := 0; c < k0; c++ {
			rows[c] = r.compReach[c].Grown(k2)
		}
		for c := k0; c < k2; c++ {
			rows[c] = bitset.New(k2)
			owned[c] = true
		}
	}
	own := func(c int) *bitset.Set {
		if !owned[c] {
			rows[c] = rows[c].Clone()
			owned[c] = true
			cost += wordsPerRow
		}
		return rows[c]
	}

	if len(dels) > 0 {
		if !r.applyDeletes(g0, comp, rows, own, dels, charge, wordsPerRow, k0, k2) {
			return nil, nil, false
		}
	}

	for _, e := range adds {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= n2 || int(v) >= n2 {
			return nil, nil, false
		}
		cu, cv := comp[u], comp[v]
		if cu == cv {
			// Intra-component insert: reachability is already total
			// within an SCC. The only observable change is a self-loop
			// on a singleton that was not yet self-reaching.
			if u == v && !rows[cu].Contains(cu) {
				own(cu).Add(cu)
			}
			continue
		}
		if rows[cv].Contains(cu) {
			// v already reaches u: this insert closes a cycle and
			// merges components — the condensation changes shape.
			return nil, nil, false
		}
		if !charge(k2) {
			return nil, nil, false
		}
		// rows[cv] is stable during the scan: cv is not among the
		// updated ancestors (it does not reach cu), and the bits being
		// added ({cv} ∪ row(cv)) never include cu, so the ancestor set
		// itself is stable too.
		target := rows[cv]
		for a := 0; a < k2; a++ {
			if a != cu && !rows[a].Contains(cu) {
				continue // not an ancestor of u
			}
			if rows[a].Contains(cv) {
				continue // already ⊇ {cv} ∪ row(cv) by consistency
			}
			if !charge(wordsPerRow) {
				return nil, nil, false
			}
			ra := own(a)
			ra.Add(cv)
			ra.Or(target)
		}
	}

	d := &Delta{AddedComps: addedNodes, Cost: cost}
	for c := 0; c < k2; c++ {
		if owned[c] {
			d.Dirty = append(d.Dirty, c)
		}
	}
	return &Reach{n: n2, comp: comp, compReach: rows}, d, true
}

type delEdge struct{ u, v graph.NodeID }

// applyDeletes folds all edge deletions into rows at once: since the
// deletes run before the adds and each removes a distinct existing
// edge, the post-delete closure is simply the closure of g0 minus the
// whole delete set, independent of order.
//
// Components splitting into two cases. An edge internal to an SCC can
// only change rows by splitting the SCC (fallback) or, on a singleton,
// by removing its self-loop; cross-component reachability never routes
// through it at the condensation level. A cross-component edge can only
// remove reachability from components that reach its source, so exactly
// the ancestor cone of the source components is recomputed, in
// post-order over the (unchanged, still acyclic) condensation, reusing
// the final rows of every component outside the cone.
func (r *Reach) applyDeletes(g0 *graph.Graph, comp []int, rows []*bitset.Set,
	own func(int) *bitset.Set, dels [][2]graph.NodeID, charge func(int) bool, wordsPerRow, k0, k2 int) bool {
	n0 := r.n
	delSet := make(map[delEdge]bool, len(dels))
	for _, e := range dels {
		// Deleted edges pre-exist in g0, so endpoints are old nodes.
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n0 || int(e[1]) >= n0 {
			return false
		}
		delSet[delEdge{e[0], e[1]}] = true
	}
	deleted := func(u, v graph.NodeID) bool { return delSet[delEdge{u, v}] }

	internal := make(map[int]bool) // components losing an internal edge
	srcMark := make(map[int]bool)  // source components of cross-component deletes
	var srcList []int
	for e := range delSet {
		cu := comp[e.u]
		if cu == comp[e.v] {
			internal[cu] = true
		} else if !srcMark[cu] {
			srcMark[cu] = true
			srcList = append(srcList, cu)
		}
	}

	// Internal deletes: collect the affected components' members in one
	// pass and check each component survives as a single SCC.
	if len(internal) > 0 {
		if !charge(n0) {
			return false
		}
		members := make(map[int][]graph.NodeID, len(internal))
		for v := 0; v < n0; v++ {
			if internal[comp[v]] {
				members[comp[v]] = append(members[comp[v]], graph.NodeID(v))
			}
		}
		for c, ms := range members {
			if len(ms) == 1 {
				// Singleton: its only possible internal edge is a
				// self-loop (edges are deduped, so there is exactly
				// one), and deleting it clears the component's
				// self-reach bit. Ancestors are unaffected — any path
				// into the node has a loop-free prefix.
				own(c).Remove(c)
				continue
			}
			ok, work := stronglyConnected(g0, comp, c, ms, deleted)
			if !charge(work) {
				return false
			}
			if !ok {
				return false // SCC splits: condensation reshapes, rebuild
			}
		}
	}

	if len(srcList) == 0 {
		return true
	}

	// Cone detection: every component that reaches (or is) a source
	// component of a cross-component delete.
	if !charge(k0 * len(srcList)) {
		return false
	}
	cone := make([]bool, k2)
	var coneList []int
	for a := 0; a < k0; a++ {
		in := srcMark[a]
		if !in {
			row := rows[a]
			for _, s := range srcList {
				if row.Contains(s) {
					in = true
					break
				}
			}
		}
		if in {
			cone[a] = true
			coneList = append(coneList, a)
		}
	}

	// Members of cone components, one pass.
	if !charge(n0) {
		return false
	}
	members := make(map[int][]graph.NodeID, len(coneList))
	for v := 0; v < n0; v++ {
		if cone[comp[v]] {
			members[comp[v]] = append(members[comp[v]], graph.NodeID(v))
		}
	}

	// Recompute cone rows in post-order over the condensation: by the
	// time a component is rebuilt every successor's row is final —
	// non-cone successors were never touched (deletes only shrink
	// reachability toward the sources, which non-cone components never
	// reach), cone successors were rebuilt first.
	const (
		unvisited = iota
		inProgress
		done
	)
	state := make([]uint8, k2)
	var stack []int
	for _, start := range coneList {
		if state[start] != unvisited {
			continue
		}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			switch state[c] {
			case unvisited:
				state[c] = inProgress
				for _, x := range members[c] {
					for _, y := range g0.Post(x) {
						if deleted(x, y) {
							continue
						}
						if d := comp[y]; d != c && cone[d] && state[d] == unvisited {
							stack = append(stack, d)
						}
					}
				}
			case inProgress:
				// Successors complete (distinct components cannot cycle,
				// so none is still in progress below us).
				row := bitset.New(k2)
				self := false
				work := 0
				for _, x := range members[c] {
					work += len(g0.Post(x))
					for _, y := range g0.Post(x) {
						if deleted(x, y) {
							continue
						}
						d := comp[y]
						if d == c {
							self = true
							continue
						}
						row.Add(d)
						row.Or(rows[d])
						work += wordsPerRow
					}
				}
				if !charge(work + wordsPerRow) {
					return false
				}
				if self {
					row.Add(c)
				}
				// Install directly: own() would clone the old row first,
				// which the full rewrite makes pointless — but the owned
				// flag must flip so later adds mutate in place.
				own(c).CopyFrom(row)
				state[c] = done
				stack = stack[:len(stack)-1]
			default:
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// stronglyConnected reports whether the members of component c remain
// one SCC in the induced subgraph after removing the deleted edges:
// a forward and a backward reachability sweep from one member must each
// cover all members. It also returns the work done, in edges scanned.
func stronglyConnected(g0 *graph.Graph, comp []int, c int, ms []graph.NodeID,
	deleted func(u, v graph.NodeID) bool) (bool, int) {
	work := 0
	sweep := func(backward bool) int {
		seen := make(map[graph.NodeID]bool, len(ms))
		seen[ms[0]] = true
		queue := []graph.NodeID{ms[0]}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			var next []graph.NodeID
			if backward {
				next = g0.Prev(x)
			} else {
				next = g0.Post(x)
			}
			work += len(next)
			for _, y := range next {
				if comp[int(y)] != c || seen[y] {
					continue
				}
				if backward {
					if deleted(y, x) {
						continue
					}
				} else if deleted(x, y) {
					continue
				}
				seen[y] = true
				queue = append(queue, y)
			}
		}
		return len(seen)
	}
	if sweep(false) != len(ms) {
		return false, work
	}
	return sweep(true) == len(ms), work
}

// UpdateRows incrementally rebuilds the dense Rows expansion after an
// ApplyEdges delta: only the forward rows of dirty components and the
// backward rows of columns whose bits changed are recomputed; every
// other row is shared with old. It returns ok=false — and the caller
// runs NewRows — when nodes were added (the row width changes, and at
// dense-tier scale a fresh expansion is cheap) or when the affected
// slice is large enough that a full rebuild would be comparable.
func UpdateRows(old *Rows, oldReach, newReach *Reach, d *Delta) (*Rows, bool) {
	if d.AddedComps > 0 || old.n != newReach.n || oldReach.n != newReach.n {
		return nil, false
	}
	n := old.n
	k := len(newReach.compReach)
	if len(oldReach.compReach) != k {
		return nil, false
	}

	// Exact changed-column set: the symmetric difference of every dirty
	// row, old vs new.
	dirty := make([]bool, k)
	dcol := bitset.New(k)
	diff := bitset.New(k)
	for _, c := range d.Dirty {
		if c < 0 || c >= k {
			return nil, false
		}
		dirty[c] = true
		or, nr := oldReach.compReach[c], newReach.compReach[c]
		diff.CopyFrom(or)
		diff.AndNot(nr)
		dcol.Or(diff)
		diff.CopyFrom(nr)
		diff.AndNot(or)
		dcol.Or(diff)
	}
	cols := dcol.Slice()

	// Cost heuristic: each affected row costs an O(n) probe pass; give
	// up once the affected slice stops being a small fraction of the
	// full 2k-row rebuild.
	affected := len(d.Dirty) + len(cols)
	if affected*4 > k && affected > 64 {
		return nil, false
	}

	comp := newReach.comp
	newFwd := make(map[int]*bitset.Set, len(d.Dirty))
	for _, c := range d.Dirty {
		row := bitset.New(n)
		cr := newReach.compReach[c]
		for w := 0; w < n; w++ {
			if cr.Contains(comp[w]) {
				row.Add(w)
			}
		}
		newFwd[c] = row
	}
	colMark := make([]bool, k)
	newBwd := make(map[int]*bitset.Set, len(cols))
	for _, dc := range cols {
		colMark[dc] = true
		row := bitset.New(n)
		for w := 0; w < n; w++ {
			if newReach.compReach[comp[w]].Contains(dc) {
				row.Add(w)
			}
		}
		newBwd[dc] = row
	}

	fwd := make([]*bitset.Set, n)
	bwd := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		c := comp[v]
		if dirty[c] {
			fwd[v] = newFwd[c]
		} else {
			fwd[v] = old.fwd[v]
		}
		if colMark[c] {
			bwd[v] = newBwd[c]
		} else {
			bwd[v] = old.bwd[v]
		}
	}
	rowBytes := 8 * ((n + 63) / 64)
	return &Rows{
		n:   n,
		fwd: fwd,
		bwd: bwd,
		// Replaced rows stay live only until the old expansion is
		// dropped; counting both is a conservative over-estimate the
		// cache accounting tolerates.
		ownedBytes: old.ownedBytes + affected*rowBytes,
	}, true
}
