package closure

import (
	"fmt"
	"sync"

	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
)

// This file defines the tiered reachability layer. The matcher's trim
// (Fig. 4 line 4) and the decision pre-filter both consult the
// adjacency matrix H2 of G2+, but how that matrix is represented is a
// memory/throughput trade-off:
//
//   - TierDense materialises per-node closure rows (closure.Rows) —
//     word-level And sweeps, O(n₂²) bits in the worst case. Fast, and
//     fine while graphs are small.
//
//   - TierSparse answers every query straight from the SCC-condensed
//     Reach index (component rows over k components plus the per-node
//     component assignment, the Appendix B representation): an O(1)
//     two-array probe per candidate, O(k²) bits total. On a data graph
//     whose condensation is small — the shape real web/social graphs
//     take, one giant strongly connected core plus a fringe — this
//     removes the quadratic-in-n₂ memory term entirely, which is what
//     lets phomd register ≥100k-node graphs.
//
// Both tiers answer the same queries through the Index interface, and
// the candidate-sparse trim is exact (TestTierEquivalence pins that
// every approximation algorithm returns bit-identical mappings under
// either tier); only the constant factors differ.

// Tier names a reachability representation.
type Tier string

const (
	// TierDense is the materialised per-node closure rows of
	// closure.Rows.
	TierDense Tier = "dense"
	// TierSparse is the candidate-sparse component-probe representation
	// of CompIndex.
	TierSparse Tier = "sparse"
)

// Index answers the reachability queries the matching algorithms
// consume: point lookups, fan counts for the decision pre-filter, and
// the candidate-set trim split of greedyMatch. Implementations are
// immutable once built and safe for concurrent readers.
type Index interface {
	// NumNodes reports the number of data-graph nodes covered.
	NumNodes() int
	// Tier identifies the representation.
	Tier() Tier
	// Reachable reports whether a nonempty path u ⇝ v exists.
	Reachable(u, v graph.NodeID) bool
	// FanOut reports |{w : u ⇝ w}|, the number of nodes reachable from
	// u by a nonempty path.
	FanOut(u graph.NodeID) int
	// FanIn reports |{w : w ⇝ u}|.
	FanIn(u graph.NodeID) int
	// Split partitions cand against the trim constraints at pivot u:
	// kept receives the candidates w satisfying every requested
	// condition (needBwd: w ⇝ u; needFwd: u ⇝ w), moved the rest. kept
	// and moved are fully overwritten (they may carry stale bits from a
	// free list) and must be distinct from cand. At least one of
	// needBwd/needFwd must be set. The returns report non-emptiness of
	// kept and moved so callers avoid a separate scan.
	Split(cand *bitset.Set, u graph.NodeID, needBwd, needFwd bool, kept, moved *bitset.Set) (anyKept, anyMoved bool)
	// Bytes approximates the heap bytes held by the index beyond what
	// the underlying Reach already accounts for (cache accounting).
	Bytes() int
}

// Rows implements Index as the dense tier.

// Tier identifies Rows as the dense tier.
func (rw *Rows) Tier() Tier { return TierDense }

// Reachable reports whether a nonempty path u ⇝ v exists.
func (rw *Rows) Reachable(u, v graph.NodeID) bool { return rw.fwd[u].Contains(int(v)) }

// FanOut reports the number of nodes reachable from u, as a word-level
// population count of u's forward row.
func (rw *Rows) FanOut(u graph.NodeID) int { return rw.fwd[u].Count() }

// FanIn reports the number of nodes that reach u.
func (rw *Rows) FanIn(u graph.NodeID) int { return rw.bwd[u].Count() }

// Split is the word-level trim: one SplitInto pass against the masked
// closure rows of u.
func (rw *Rows) Split(cand *bitset.Set, u graph.NodeID, needBwd, needFwd bool, kept, moved *bitset.Set) (anyKept, anyMoved bool) {
	var a, b *bitset.Set
	if needBwd {
		a = rw.bwd[u]
	}
	if needFwd {
		if a == nil {
			a = rw.fwd[u]
		} else {
			b = rw.fwd[u]
		}
	}
	return cand.SplitInto(a, b, kept, moved)
}

// CompIndex is the candidate-sparse tier: it answers every query
// directly from the SCC-condensed Reach index, never materialising
// node-level rows. A reachability probe is two array loads and one bit
// test (comp[w] into the component row of comp[u]); the trim iterates
// the candidate set's members instead of And-ing full-width rows, which
// is the right shape once the ξ-filter has left each pattern node with
// few candidates. Memory beyond the Reach index itself is O(k) — the
// lazily built per-component fan counts — so a catalog entry costs
// O(n₂ + k²) bits instead of O(n₂²).
type CompIndex struct {
	r *Reach

	// Fan counts aggregate component sizes over the component-level
	// closure; they are only needed by the decision pre-filter, so the
	// O(closure-bits) aggregation pass is deferred to first use.
	fanOnce sync.Once
	fanOut  []int32 // fanOut[c] = Σ size(d) over d ∈ compReach[c]
	fanIn   []int32 // fanIn[d] = Σ size(c) over c with d ∈ compReach[c]
}

// NewCompIndex wraps a Reach index as a candidate-sparse Index.
// Construction is O(1): every structure it consults already lives in
// the Reach.
func NewCompIndex(r *Reach) *CompIndex { return &CompIndex{r: r} }

// NumNodes reports the number of nodes the index covers.
func (ci *CompIndex) NumNodes() int { return ci.r.n }

// Tier identifies CompIndex as the sparse tier.
func (ci *CompIndex) Tier() Tier { return TierSparse }

// Reachable reports whether a nonempty path u ⇝ v exists.
func (ci *CompIndex) Reachable(u, v graph.NodeID) bool { return ci.r.Reachable(u, v) }

// Split partitions cand by probing the component rows once per
// candidate: O(|cand|) probes plus the clear of the two output sets.
func (ci *CompIndex) Split(cand *bitset.Set, u graph.NodeID, needBwd, needFwd bool, kept, moved *bitset.Set) (anyKept, anyMoved bool) {
	kept.Clear()
	moved.Clear()
	r := ci.r
	cu := r.comp[u]
	fwdRow := r.compReach[cu] // components reachable from u
	for w := cand.Next(0); w >= 0; w = cand.Next(w + 1) {
		cw := r.comp[w]
		ok := true
		if needBwd && !r.compReach[cw].Contains(cu) {
			ok = false
		}
		if ok && needFwd && !fwdRow.Contains(cw) {
			ok = false
		}
		if ok {
			kept.Add(w)
			anyKept = true
		} else {
			moved.Add(w)
			anyMoved = true
		}
	}
	return anyKept, anyMoved
}

// FanOut reports the number of nodes reachable from u by aggregating
// member counts over u's component row.
func (ci *CompIndex) FanOut(u graph.NodeID) int {
	ci.buildFans()
	return int(ci.fanOut[ci.r.comp[u]])
}

// FanIn reports the number of nodes that reach u.
func (ci *CompIndex) FanIn(u graph.NodeID) int {
	ci.buildFans()
	return int(ci.fanIn[ci.r.comp[u]])
}

// buildFans aggregates component sizes over the component-level
// closure in one pass over its set bits. Deferred to first use because
// only the decision pre-filter consumes fan counts; the approximation
// hot path never pays for it.
func (ci *CompIndex) buildFans() {
	ci.fanOnce.Do(func() {
		r := ci.r
		k := len(r.compReach)
		size := make([]int32, k)
		for _, c := range r.comp {
			size[c]++
		}
		fanOut := make([]int32, k)
		fanIn := make([]int32, k)
		for c := 0; c < k; c++ {
			row := r.compReach[c]
			var total int32
			for d := row.Next(0); d >= 0; d = row.Next(d + 1) {
				total += size[d]
				fanIn[d] += size[c]
			}
			fanOut[c] = total
		}
		ci.fanOut, ci.fanIn = fanOut, fanIn
	})
}

// Bytes approximates the heap held beyond the Reach index: the two fan
// arrays (reported whether or not they are built yet, so cache
// accounting does not shift after a decide request).
func (ci *CompIndex) Bytes() int { return 2 * 4 * len(ci.r.compReach) }

// ProjectedRowsBytes reports what NewRows would allocate for r without
// building anything — the quantity tier selection weighs against
// DefaultDenseMaxBytes, and the "dense projection" the large-graph
// benchmark compares resident memory to.
func ProjectedRowsBytes(r *Reach) int {
	n, k := r.n, len(r.compReach)
	identity := k == n
	if identity {
		for v, c := range r.comp {
			if c != v {
				identity = false
				break
			}
		}
	}
	rowBytes := 8 * ((n + 63) / 64)
	owned := 2 * n * 8 // fwd/bwd pointer slices
	if identity {
		owned += k * rowBytes // compBwd only; fwd aliases Reach rows
	} else {
		owned += 2 * k * rowBytes
	}
	return owned
}

// TierPolicy selects how an Index is built from a Reach.
type TierPolicy string

const (
	// PolicyAuto picks the dense tier while its projected size fits the
	// configured budget and the sparse tier beyond it.
	PolicyAuto TierPolicy = "auto"
	// PolicyDense forces materialised rows regardless of size.
	PolicyDense TierPolicy = "dense"
	// PolicySparse forces the candidate-sparse tier.
	PolicySparse TierPolicy = "sparse"
)

// ParseTierPolicy validates a wire/flag tier policy; empty means auto.
func ParseTierPolicy(s string) (TierPolicy, error) {
	switch p := TierPolicy(s); p {
	case "":
		return PolicyAuto, nil
	case PolicyAuto, PolicyDense, PolicySparse:
		return p, nil
	default:
		return "", fmt.Errorf("closure: unknown tier policy %q (want auto, dense or sparse)", s)
	}
}

// DefaultDenseMaxBytes is the auto-tier threshold: a graph whose
// projected dense rows stay under it gets TierDense, anything larger
// gets TierSparse. 64 MiB keeps every graph up to roughly 10–15k nodes
// on the fast dense path while guaranteeing one registered graph can
// never demand gigabytes of row matrices.
const DefaultDenseMaxBytes = 64 << 20

// BuildIndex materialises an Index over r under the given policy.
// A non-positive denseMaxBytes means DefaultDenseMaxBytes.
func BuildIndex(r *Reach, policy TierPolicy, denseMaxBytes int) Index {
	if denseMaxBytes <= 0 {
		denseMaxBytes = DefaultDenseMaxBytes
	}
	switch policy {
	case PolicyDense:
		return NewRows(r)
	case PolicySparse:
		return NewCompIndex(r)
	default:
		if ProjectedRowsBytes(r) <= denseMaxBytes {
			return NewRows(r)
		}
		return NewCompIndex(r)
	}
}

// AutoIndex is BuildIndex under the default policy and threshold — the
// representation an Instance derives on its own when no catalog injects
// a shared one.
func AutoIndex(r *Reach) Index { return BuildIndex(r, PolicyAuto, DefaultDenseMaxBytes) }
