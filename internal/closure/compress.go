package closure

import (
	"sort"
	"strings"

	"graphmatch/internal/graph"
)

// Compressed is the Appendix B representation G2* of a closure graph G2+:
// every SCC of G2 (a clique in G2+) collapses to a single node labelled
// with the bag of member labels and carrying a self-loop when the clique is
// nonempty. The paper observes that matching against G2* preserves (1-1)
// p-hom mappings and their quality while shrinking the graph; the capacity
// of each bag bounds how many distinct G1 nodes a 1-1 mapping may place in
// that component.
type Compressed struct {
	// Star is the compressed graph: one node per SCC of the original G2.
	// Node labels are "a|b|c"-style sorted bags of member labels.
	Star *graph.Graph
	// Comp maps original node → compressed node.
	Comp []int
	// Members lists original nodes per compressed node.
	Members [][]graph.NodeID
	// Capacity is len(Members[c]) — how many injective assignments a bag
	// can absorb.
	Capacity []int
}

// Compress builds the Appendix B compressed closure G2* of g.
func Compress(g *graph.Graph) *Compressed {
	dag, scc, selfReach := g.Condense()
	k := scc.NumComponents()
	star := graph.New(k)
	capacity := make([]int, k)
	for c := 0; c < k; c++ {
		labels := make([]string, 0, len(scc.Members[c]))
		for _, v := range scc.Members[c] {
			labels = append(labels, g.Label(v))
		}
		sort.Strings(labels)
		star.AddNode(strings.Join(labels, "|"))
		capacity[c] = len(scc.Members[c])
	}
	// Edges of the condensation become closure edges between bags: one hop
	// in Star means "some nonempty path in G2". Reachability propagates over
	// the DAG; components are in reverse topological order, as in Compute.
	succs := make([]map[int]struct{}, k)
	for c := 0; c < k; c++ {
		set := make(map[int]struct{})
		for _, s := range dag.Post(graph.NodeID(c)) {
			set[int(s)] = struct{}{}
			for t := range succs[s] {
				set[t] = struct{}{}
			}
		}
		if selfReach[c] {
			set[c] = struct{}{}
		}
		succs[c] = set
	}
	for c := 0; c < k; c++ {
		for t := range succs[c] {
			star.AddEdge(graph.NodeID(c), graph.NodeID(t))
		}
	}
	star.Finish()
	return &Compressed{Star: star, Comp: scc.Comp, Members: scc.Members, Capacity: capacity}
}

// BagLabels returns the sorted member labels of compressed node c.
func (c *Compressed) BagLabels(comp int) []string {
	return strings.Split(c.Star.Label(graph.NodeID(comp)), "|")
}
