package closure

import (
	"math/rand"
	"testing"

	"graphmatch/internal/graph"
)

func randomRowsGraph(n, edges int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("x")
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

// checkRows verifies both directions of a Rows expansion against the
// Reach index it derives from.
func checkRows(t *testing.T, r *Reach, rw *Rows) {
	t.Helper()
	n := r.NumNodes()
	if rw.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", rw.NumNodes(), n)
	}
	for u := 0; u < n; u++ {
		uu := graph.NodeID(u)
		fwd, bwd := rw.Fwd(uu), rw.Bwd(uu)
		if fwd.Len() != n || bwd.Len() != n {
			t.Fatalf("row capacity %d/%d, want %d", fwd.Len(), bwd.Len(), n)
		}
		for v := 0; v < n; v++ {
			vv := graph.NodeID(v)
			if got, want := fwd.Contains(v), r.Reachable(uu, vv); got != want {
				t.Fatalf("Fwd(%d).Contains(%d) = %v, want %v", u, v, got, want)
			}
			if got, want := bwd.Contains(v), r.Reachable(vv, uu); got != want {
				t.Fatalf("Bwd(%d).Contains(%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestRowsMatchReach(t *testing.T) {
	// Compute produces SCC components (the shared-row expansion path);
	// ComputeBFS and ComputeBounded produce singleton components in ID
	// order (the zero-copy identity path). All three shapes must expand
	// to the same relation their Reach encodes.
	for seed := int64(0); seed < 12; seed++ {
		g := randomRowsGraph(20+int(seed), 50+3*int(seed), seed)
		for _, tc := range []struct {
			name string
			r    *Reach
		}{
			{"scc", Compute(g)},
			{"bfs", ComputeBFS(g)},
			{"bounded2", ComputeBounded(g, 2)},
		} {
			checkRows(t, tc.r, NewRows(tc.r))
		}
	}
}

func TestRowsMatchReachableSet(t *testing.T) {
	g := randomRowsGraph(40, 120, 99)
	r := Compute(g)
	rw := NewRows(r)
	for u := 0; u < g.NumNodes(); u++ {
		if !rw.Fwd(graph.NodeID(u)).Equal(r.ReachableSet(graph.NodeID(u))) {
			t.Fatalf("Fwd(%d) differs from ReachableSet", u)
		}
	}
}

func TestRowsSharedWithinSCC(t *testing.T) {
	// A 3-cycle is one SCC: its members must alias one forward row and
	// one backward row rather than holding three copies each.
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	rw := NewRows(Compute(g))
	if rw.Fwd(0) != rw.Fwd(1) || rw.Fwd(1) != rw.Fwd(2) {
		t.Error("SCC members should share one forward row")
	}
	if rw.Bwd(0) != rw.Bwd(1) || rw.Bwd(1) != rw.Bwd(2) {
		t.Error("SCC members should share one backward row")
	}
	for v := 0; v < 3; v++ {
		if got := rw.Fwd(graph.NodeID(v)).Count(); got != 3 {
			t.Errorf("Fwd(%d).Count = %d, want 3 (cycle closure is complete)", v, got)
		}
	}
}

func TestRowsBytes(t *testing.T) {
	g := randomRowsGraph(64, 200, 7)
	r := Compute(g)
	rw := NewRows(r)
	if rw.Bytes() <= 0 {
		t.Fatalf("Rows.Bytes = %d, want > 0", rw.Bytes())
	}
	if r.Bytes() <= 0 {
		t.Fatalf("Reach.Bytes = %d, want > 0", r.Bytes())
	}
}

func TestRowsEmptyGraph(t *testing.T) {
	g := graph.New(0)
	g.Finish()
	rw := NewRows(Compute(g))
	if rw.NumNodes() != 0 {
		t.Fatalf("NumNodes = %d, want 0", rw.NumNodes())
	}
}
