package closure

import (
	"math/rand"
	"testing"

	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
)

// tierIndexes builds both tiers over the same Reach.
func tierIndexes(r *Reach) []Index {
	return []Index{NewRows(r), NewCompIndex(r)}
}

func TestIndexTiersAgreeOnQueries(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomRowsGraph(25+int(seed), 60+4*int(seed), seed)
		for _, r := range []*Reach{Compute(g), ComputeBFS(g), ComputeBounded(g, 2)} {
			rows, comp := NewRows(r), NewCompIndex(r)
			n := r.NumNodes()
			for u := 0; u < n; u++ {
				uu := graph.NodeID(u)
				if rows.FanOut(uu) != comp.FanOut(uu) {
					t.Fatalf("seed %d: FanOut(%d): dense %d, sparse %d", seed, u, rows.FanOut(uu), comp.FanOut(uu))
				}
				if rows.FanIn(uu) != comp.FanIn(uu) {
					t.Fatalf("seed %d: FanIn(%d): dense %d, sparse %d", seed, u, rows.FanIn(uu), comp.FanIn(uu))
				}
				for v := 0; v < n; v++ {
					vv := graph.NodeID(v)
					want := r.Reachable(uu, vv)
					if rows.Reachable(uu, vv) != want || comp.Reachable(uu, vv) != want {
						t.Fatalf("seed %d: Reachable(%d,%d) disagrees with Reach", seed, u, v)
					}
				}
			}
		}
	}
}

func TestIndexTiersAgreeOnSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for seed := int64(0); seed < 10; seed++ {
		g := randomRowsGraph(30, 80, seed)
		r := Compute(g)
		rows, comp := NewRows(r), NewCompIndex(r)
		n := r.NumNodes()
		for trial := 0; trial < 40; trial++ {
			cand := bitset.New(n)
			for v := 0; v < n; v++ {
				if rng.Intn(3) == 0 {
					cand.Add(v)
				}
			}
			u := graph.NodeID(rng.Intn(n))
			needBwd, needFwd := rng.Intn(2) == 0, rng.Intn(2) == 0
			if !needBwd && !needFwd {
				needFwd = true
			}
			// Pre-dirty the outputs: Split must fully overwrite them.
			dk, dm := bitset.New(n), bitset.New(n)
			dk.Fill()
			dm.Fill()
			sk, sm := bitset.New(n), bitset.New(n)
			sk.Fill()
			sm.Fill()
			k1, m1 := rows.Split(cand, u, needBwd, needFwd, dk, dm)
			k2, m2 := comp.Split(cand, u, needBwd, needFwd, sk, sm)
			if k1 != k2 || m1 != m2 {
				t.Fatalf("seed %d: Split flags disagree: dense (%v,%v) sparse (%v,%v)", seed, k1, m1, k2, m2)
			}
			if !dk.Equal(sk) || !dm.Equal(sm) {
				t.Fatalf("seed %d u=%d bwd=%v fwd=%v: Split sets disagree", seed, u, needBwd, needFwd)
			}
			// Cross-check against the point queries.
			for w := cand.Next(0); w >= 0; w = cand.Next(w + 1) {
				ww := graph.NodeID(w)
				want := (!needBwd || r.Reachable(ww, u)) && (!needFwd || r.Reachable(u, ww))
				if dk.Contains(w) != want || dm.Contains(w) == want {
					t.Fatalf("seed %d: Split misplaced candidate %d", seed, w)
				}
			}
		}
	}
}

func TestCompIndexBytesSmall(t *testing.T) {
	// The whole point of the sparse tier: its owned memory is O(k), not
	// O(n²) — on a graph with one big SCC it must undercut the dense
	// rows by orders of magnitude.
	n := 512
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("x")
	}
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n)) // one giant cycle
	}
	g.Finish()
	r := Compute(g)
	comp := NewCompIndex(r)
	rows := NewRows(r)
	if comp.Bytes() >= rows.Bytes() {
		t.Fatalf("CompIndex.Bytes %d not below Rows.Bytes %d", comp.Bytes(), rows.Bytes())
	}
	if comp.Bytes() <= 0 {
		t.Fatalf("CompIndex.Bytes = %d, want > 0", comp.Bytes())
	}
}

func TestProjectedRowsBytes(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomRowsGraph(40+int(seed), 100, seed)
		for _, r := range []*Reach{Compute(g), ComputeBFS(g)} {
			if got, want := ProjectedRowsBytes(r), NewRows(r).Bytes(); got != want {
				t.Fatalf("seed %d: ProjectedRowsBytes = %d, NewRows allocated %d", seed, got, want)
			}
		}
	}
}

func TestParseTierPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TierPolicy
		ok   bool
	}{
		{"", PolicyAuto, true},
		{"auto", PolicyAuto, true},
		{"dense", PolicyDense, true},
		{"sparse", PolicySparse, true},
		{"rows", "", false},
	} {
		got, err := ParseTierPolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseTierPolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseTierPolicy(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBuildIndexPolicy(t *testing.T) {
	g := randomRowsGraph(60, 150, 3)
	r := Compute(g)
	if tier := BuildIndex(r, PolicyDense, 0).Tier(); tier != TierDense {
		t.Fatalf("PolicyDense built %q", tier)
	}
	if tier := BuildIndex(r, PolicySparse, 0).Tier(); tier != TierSparse {
		t.Fatalf("PolicySparse built %q", tier)
	}
	// Auto: a tiny budget forces sparse, a huge one allows dense.
	if tier := BuildIndex(r, PolicyAuto, 1).Tier(); tier != TierSparse {
		t.Fatalf("auto with 1-byte budget built %q", tier)
	}
	if tier := BuildIndex(r, PolicyAuto, 1<<30).Tier(); tier != TierDense {
		t.Fatalf("auto with 1GiB budget built %q", tier)
	}
	if tier := AutoIndex(r).Tier(); tier != TierDense {
		t.Fatalf("AutoIndex on a 60-node graph built %q, want dense", tier)
	}
}
