package closure

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
)

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i%26)))
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func TestReachableChain(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	r := Compute(g)
	if !r.Reachable(0, 1) || !r.Reachable(0, 2) || !r.Reachable(1, 2) {
		t.Error("forward reachability missing")
	}
	if r.Reachable(2, 0) || r.Reachable(1, 0) {
		t.Error("backward reachability should not exist")
	}
	// Nonempty-path semantics: no node reaches itself without a cycle.
	for v := graph.NodeID(0); v < 3; v++ {
		if r.Reachable(v, v) {
			t.Errorf("node %d reaches itself on a path-free chain", v)
		}
	}
}

func TestReachableSelfLoop(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 0}, {0, 1}})
	r := Compute(g)
	if !r.Reachable(0, 0) {
		t.Error("self-loop node must reach itself")
	}
	if r.Reachable(1, 1) {
		t.Error("plain node must not reach itself")
	}
}

func TestReachableCycle(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	r := Compute(g)
	for u := graph.NodeID(0); u < 3; u++ {
		for v := graph.NodeID(0); v < 3; v++ {
			if !r.Reachable(u, v) {
				t.Errorf("cycle: %d should reach %d", u, v)
			}
		}
	}
}

func TestComputeMatchesBFSReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed, 30, 70)
		fast := Compute(g)
		ref := ComputeBFS(g)
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
				if fast.Reachable(u, v) != ref.Reachable(u, v) {
					t.Fatalf("seed %d: Reachable(%d,%d): fast=%v ref=%v",
						seed, u, v, fast.Reachable(u, v), ref.Reachable(u, v))
				}
			}
		}
	}
}

func TestComputeMatchesHasPath(t *testing.T) {
	g := randomGraph(42, 20, 50)
	r := Compute(g)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if r.Reachable(u, v) != g.HasPath(u, v) {
				t.Fatalf("Reachable(%d,%d) disagrees with HasPath", u, v)
			}
		}
	}
}

func TestReachableSetAndCount(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	r := Compute(g)
	s := r.ReachableSet(0)
	if s.Count() != 2 || !s.Contains(1) || !s.Contains(2) {
		t.Fatalf("ReachableSet(0) = %v", s.Slice())
	}
	if got := r.CountEdges(); got != 3 {
		t.Fatalf("CountEdges = %d, want 3 (0→1, 0→2, 1→2)", got)
	}
}

func TestClosureGraph(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	plus := Compute(g).Graph(g)
	if plus.NumEdges() != 3 {
		t.Fatalf("closure edges = %d, want 3", plus.NumEdges())
	}
	if !plus.HasEdge(0, 2) {
		t.Error("closure missing transitive edge (0,2)")
	}
	if plus.Label(0) != "a" {
		t.Error("closure lost node labels")
	}
}

func TestClosureGraphIdempotentOnClosedGraphs(t *testing.T) {
	// Property: (G+)+ = G+.
	f := func(seed int64) bool {
		g := randomGraph(seed, 12, 25)
		p1 := Compute(g).Graph(g)
		p2 := Compute(p1).Graph(p1)
		return graph.Equal(p1, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitivityProperty(t *testing.T) {
	// Property: Reachable(u,v) && Reachable(v,w) ⇒ Reachable(u,w).
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 30)
		r := Compute(g)
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !r.Reachable(graph.NodeID(u), graph.NodeID(v)) {
					continue
				}
				for w := 0; w < n; w++ {
					if r.Reachable(graph.NodeID(v), graph.NodeID(w)) &&
						!r.Reachable(graph.NodeID(u), graph.NodeID(w)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeImpliesReachable(t *testing.T) {
	g := randomGraph(9, 25, 60)
	r := Compute(g)
	g.Edges(func(from, to graph.NodeID) bool {
		if !r.Reachable(from, to) {
			t.Fatalf("edge (%d,%d) not reachable in closure", from, to)
		}
		return true
	})
}

func TestCompressBasics(t *testing.T) {
	// Figure 10(b)-style: B→A, A→C, A→D, C→D, D→C. SCC {C,D} collapses.
	g := graph.FromEdgeList([]string{"B", "A", "C", "D"},
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 3}, {3, 2}})
	c := Compress(g)
	if c.Star.NumNodes() != 3 {
		t.Fatalf("compressed nodes = %d, want 3", c.Star.NumNodes())
	}
	// The CD bag must have a self-loop and capacity 2.
	cd := -1
	for v := 0; v < c.Star.NumNodes(); v++ {
		if strings.Contains(c.Star.Label(graph.NodeID(v)), "|") {
			cd = v
		}
	}
	if cd == -1 {
		t.Fatal("no bag node found")
	}
	if c.Star.Label(graph.NodeID(cd)) != "C|D" {
		t.Errorf("bag label = %q, want C|D", c.Star.Label(graph.NodeID(cd)))
	}
	if !c.Star.HasEdge(graph.NodeID(cd), graph.NodeID(cd)) {
		t.Error("bag node missing self-loop")
	}
	if c.Capacity[cd] != 2 {
		t.Errorf("bag capacity = %d, want 2", c.Capacity[cd])
	}
	if got := c.BagLabels(cd); len(got) != 2 || got[0] != "C" || got[1] != "D" {
		t.Errorf("BagLabels = %v", got)
	}
}

func TestCompressPreservesReachability(t *testing.T) {
	// Property: u ⇝ v in G2 (nonempty) iff Comp[u] → Comp[v] edge in Star.
	f := func(seed int64) bool {
		g := randomGraph(seed, 14, 30)
		r := Compute(g)
		c := Compress(g)
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := r.Reachable(graph.NodeID(u), graph.NodeID(v))
				got := c.Star.HasEdge(graph.NodeID(c.Comp[u]), graph.NodeID(c.Comp[v]))
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressCapacitiesCoverAllNodes(t *testing.T) {
	g := randomGraph(5, 40, 100)
	c := Compress(g)
	total := 0
	for _, cap := range c.Capacity {
		total += cap
	}
	if total != g.NumNodes() {
		t.Fatalf("capacities sum to %d, want %d", total, g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		found := false
		for _, m := range c.Members[c.Comp[v]] {
			if m == graph.NodeID(v) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d missing from its component members", v)
		}
	}
}

func TestComputeBoundedSemantics(t *testing.T) {
	// Chain 0→1→2→3: bounded reachability cuts off at the hop limit.
	g := graph.FromEdgeList([]string{"a", "b", "c", "d"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}})
	r1 := ComputeBounded(g, 1)
	if !r1.Reachable(0, 1) || r1.Reachable(0, 2) {
		t.Fatal("1-bounded reach must be exactly the edges")
	}
	r2 := ComputeBounded(g, 2)
	if !r2.Reachable(0, 2) || r2.Reachable(0, 3) {
		t.Fatal("2-bounded reach wrong")
	}
	r3 := ComputeBounded(g, 3)
	if !r3.Reachable(0, 3) {
		t.Fatal("3-bounded reach should cover the chain")
	}
}

func TestComputeBoundedZeroIsUnbounded(t *testing.T) {
	g := randomGraph(21, 20, 50)
	full := Compute(g)
	viaZero := ComputeBounded(g, 0)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if full.Reachable(u, v) != viaZero.Reachable(u, v) {
				t.Fatalf("bound 0 disagrees with full closure at (%d,%d)", u, v)
			}
		}
	}
}

func TestComputeBoundedLargeBoundMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 35)
		full := Compute(g)
		bounded := ComputeBounded(g, g.NumNodes()) // n hops suffice
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if full.Reachable(graph.NodeID(u), graph.NodeID(v)) !=
					bounded.Reachable(graph.NodeID(u), graph.NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeBoundedMonotone(t *testing.T) {
	// Property: reach at bound k is a subset of reach at bound k+1.
	f := func(seed int64) bool {
		g := randomGraph(seed, 12, 26)
		prev := ComputeBounded(g, 1)
		for k := 2; k <= 4; k++ {
			cur := ComputeBounded(g, k)
			for u := 0; u < g.NumNodes(); u++ {
				for v := 0; v < g.NumNodes(); v++ {
					if prev.Reachable(graph.NodeID(u), graph.NodeID(v)) &&
						!cur.Reachable(graph.NodeID(u), graph.NodeID(v)) {
						return false
					}
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeBoundedSelfLoop(t *testing.T) {
	g := graph.FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	r := ComputeBounded(g, 1)
	if !r.Reachable(0, 0) {
		t.Fatal("self-loop is a length-1 path")
	}
}

func BenchmarkComputeSCC(b *testing.B) {
	g := randomGraph(1, 500, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g)
	}
}

func BenchmarkComputeBFS(b *testing.B) {
	g := randomGraph(1, 500, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeBFS(g)
	}
}
