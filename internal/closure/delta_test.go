package closure

import (
	"fmt"
	"math/rand"
	"testing"

	"graphmatch/internal/graph"
)

// applyForTest mirrors graph.ApplyPatch's order for the parts ApplyEdges
// models: append nodes, delete edges, add edges.
func applyForTest(t *testing.T, g0 *graph.Graph, addedNodes int, dels, adds [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	p := &graph.Patch{DelEdges: dels, AddEdges: adds}
	for i := 0; i < addedNodes; i++ {
		p.AddNodes = append(p.AddNodes, graph.Node{Label: fmt.Sprintf("new%d", i)})
	}
	g2, err := g0.ApplyPatch(p)
	if err != nil {
		t.Fatalf("ApplyPatch: %v", err)
	}
	return g2
}

func reachMatrix(r *Reach) []bool {
	n := r.NumNodes()
	m := make([]bool, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			m[u*n+v] = r.Reachable(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return m
}

func requireSameClosure(t *testing.T, want, got *Reach, label string) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("%s: node count %d vs %d", label, got.NumNodes(), want.NumNodes())
	}
	n := want.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w := want.Reachable(graph.NodeID(u), graph.NodeID(v))
			g := got.Reachable(graph.NodeID(u), graph.NodeID(v))
			if w != g {
				t.Fatalf("%s: Reachable(%d,%d) = %v, want %v", label, u, v, g, w)
			}
		}
	}
}

func requireSameRows(t *testing.T, want, got *Rows, label string) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("%s: rows node count %d vs %d", label, got.NumNodes(), want.NumNodes())
	}
	for v := 0; v < want.NumNodes(); v++ {
		id := graph.NodeID(v)
		if !want.Fwd(id).Equal(got.Fwd(id)) {
			t.Fatalf("%s: fwd row %d differs", label, v)
		}
		if !want.Bwd(id).Equal(got.Bwd(id)) {
			t.Fatalf("%s: bwd row %d differs", label, v)
		}
	}
}

func deltaRandGraph(rng *rand.Rand, n int, edges int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func randomPatch(rng *rand.Rand, g *graph.Graph) (addedNodes int, dels, adds [][2]graph.NodeID) {
	n := g.NumNodes()
	var all [][2]graph.NodeID
	g.Edges(func(from, to graph.NodeID) bool {
		all = append(all, [2]graph.NodeID{from, to})
		return true
	})
	seen := map[[2]graph.NodeID]bool{}
	for i := 0; i < rng.Intn(4); i++ {
		if len(all) == 0 {
			break
		}
		e := all[rng.Intn(len(all))]
		if !seen[e] {
			seen[e] = true
			dels = append(dels, e)
		}
	}
	addedNodes = rng.Intn(3)
	total := n + addedNodes
	for i := 0; i < rng.Intn(5); i++ {
		adds = append(adds, [2]graph.NodeID{
			graph.NodeID(rng.Intn(total)),
			graph.NodeID(rng.Intn(total)),
		})
	}
	return addedNodes, dels, adds
}

// TestApplyEdgesRandomEquivalence is the closure-layer equivalence
// quickcheck: over randomized graphs and patches, an incremental update
// that succeeds must be indistinguishable from a fresh Compute of the
// patched graph — and must leave the original index untouched.
func TestApplyEdgesRandomEquivalence(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 120
	}
	applied := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 2 + rng.Intn(24)
		g0 := deltaRandGraph(rng, n, rng.Intn(3*n))
		addedNodes, dels, adds := randomPatch(rng, g0)
		r0 := Compute(g0)
		before := reachMatrix(r0)

		nr, d, ok := r0.ApplyEdges(g0, addedNodes, dels, adds, 1<<30)

		// The receiver must be untouched either way.
		after := reachMatrix(r0)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("trial %d: ApplyEdges mutated the receiver", trial)
			}
		}
		if !ok {
			continue
		}
		applied++
		g2 := applyForTest(t, g0, addedNodes, dels, adds)
		want := Compute(g2)
		requireSameClosure(t, want, nr, fmt.Sprintf("trial %d", trial))

		// Dense-tier maintenance must match a fresh expansion bit for
		// bit whenever it reports success.
		if d.AddedComps == 0 {
			old := NewRows(r0)
			if up, ok2 := UpdateRows(old, r0, nr, d); ok2 {
				requireSameRows(t, NewRows(nr), up, fmt.Sprintf("trial %d rows", trial))
			}
		}
	}
	if applied < trials/4 {
		t.Fatalf("incremental path succeeded only %d/%d times — fallback too eager", applied, trials)
	}
}

func mustApplyEdges(t *testing.T, r *Reach, g0 *graph.Graph, addedNodes int, dels, adds [][2]graph.NodeID) (*Reach, *Delta) {
	t.Helper()
	nr, d, ok := r.ApplyEdges(g0, addedNodes, dels, adds, 1<<30)
	if !ok {
		t.Fatalf("ApplyEdges fell back unexpectedly")
	}
	return nr, d
}

func TestApplyEdgesMergeFallsBack(t *testing.T) {
	// 0 → 1 → 2; adding 2 → 0 closes a cycle and merges three SCCs.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := Compute(g)
	if _, _, ok := r.ApplyEdges(g, 0, nil, [][2]graph.NodeID{{2, 0}}, 1<<30); ok {
		t.Fatal("SCC-merging insert must fall back to rebuild")
	}
}

func TestApplyEdgesSplitFallsBack(t *testing.T) {
	// A 3-cycle; deleting one edge splits the SCC.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	r := Compute(g)
	if _, _, ok := r.ApplyEdges(g, 0, [][2]graph.NodeID{{1, 2}}, nil, 1<<30); ok {
		t.Fatal("SCC-splitting delete must fall back to rebuild")
	}
}

func TestApplyEdgesInternalDeleteKeepsSCC(t *testing.T) {
	// A 3-cycle with a chord 0→2 plus redundant 2→1: deleting 0→1 keeps
	// the SCC intact, so the update stays incremental and rows are
	// unchanged.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 2)
	g.AddEdge(2, 1)
	r := Compute(g)
	nr, _ := mustApplyEdges(t, r, g, 0, [][2]graph.NodeID{{0, 1}}, nil)
	g2 := applyForTest(t, g, 0, [][2]graph.NodeID{{0, 1}}, nil)
	requireSameClosure(t, Compute(g2), nr, "internal delete")
}

func TestApplyEdgesSelfLoop(t *testing.T) {
	g := graph.New(2)
	g.AddNode("a")
	g.AddNode("b")
	g.AddEdge(0, 1)
	r := Compute(g)

	nr, _ := mustApplyEdges(t, r, g, 0, nil, [][2]graph.NodeID{{0, 0}})
	if !nr.Reachable(0, 0) {
		t.Fatal("self-loop add must make the node self-reaching")
	}
	g1 := applyForTest(t, g, 0, nil, [][2]graph.NodeID{{0, 0}})
	requireSameClosure(t, Compute(g1), nr, "self-loop add")

	// And removing it again on the patched state.
	nr2, _ := mustApplyEdges(t, nr, g1, 0, [][2]graph.NodeID{{0, 0}}, nil)
	g2 := applyForTest(t, g1, 0, [][2]graph.NodeID{{0, 0}}, nil)
	requireSameClosure(t, Compute(g2), nr2, "self-loop delete")
}

func TestApplyEdgesAddNodesAndWire(t *testing.T) {
	g := graph.New(2)
	g.AddNode("a")
	g.AddNode("b")
	g.AddEdge(0, 1)
	r := Compute(g)

	adds := [][2]graph.NodeID{{1, 2}, {2, 3}}
	nr, d := mustApplyEdges(t, r, g, 2, nil, adds)
	if d.AddedComps != 2 {
		t.Fatalf("AddedComps = %d, want 2", d.AddedComps)
	}
	g2 := applyForTest(t, g, 2, nil, adds)
	requireSameClosure(t, Compute(g2), nr, "node adds")
}

func TestApplyEdgesBudgetFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := deltaRandGraph(rng, 200, 400)
	r := Compute(g)
	// A budget of one unit cannot cover any real edge work.
	if _, _, ok := r.ApplyEdges(g, 0, nil, [][2]graph.NodeID{{0, 199}}, 1); ok {
		t.Fatal("unpayable budget must force fallback")
	}
}

func TestGrown(t *testing.T) {
	// Via the closure package's own dependency to keep the test near its
	// only consumer: growing within a word shares storage, past it copies.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode("x")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := Compute(g)
	nr, _, ok := r.ApplyEdges(g, 70, nil, [][2]graph.NodeID{{2, 3}}, 1<<30)
	if !ok {
		t.Fatal("node growth across a word boundary fell back")
	}
	if !nr.Reachable(0, 3) {
		t.Fatal("grown index lost reachability through the new node")
	}
	if r.NumNodes() != 3 || r.NumComponents() != 3 {
		t.Fatal("receiver mutated by growth")
	}
}
