package graphmatch

// Cross-module integration tests: these exercise the full pipelines the
// way cmd/experiments and the examples do — generator → skeleton/matrix →
// matcher → metric — and pin the paper's qualitative findings at test
// scale.

import (
	"testing"
	"time"

	"graphmatch/internal/core"
	"graphmatch/internal/experiments"
	"graphmatch/internal/graph"
	"graphmatch/internal/mcs"
	"graphmatch/internal/reduction"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/syngen"
	"graphmatch/internal/webgen"
)

func TestIntegrationWebMirrorPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is slow")
	}
	arch := webgen.Generate(webgen.Config{Category: webgen.Organization, Pages: 800, Versions: 5, Seed: 3})
	pattern := webgen.Skeleton(arch.Versions[0], 0.2)
	for i, snap := range arch.Versions[1:] {
		data := webgen.Skeleton(snap, 0.2)
		mat := ContentSimilarity(pattern, data, 4)
		m := NewMatcher(pattern, data, mat, 0.75)
		sigma := m.MaxCard()
		if err := m.Verify(sigma, false); err != nil {
			t.Fatalf("version %d: %v", i+1, err)
		}
		if q := m.QualCard(sigma); q < 0.75 {
			t.Errorf("version %d: organization archive should mirror, qualCard = %v", i+1, q)
		}
	}
}

func TestIntegrationSyntheticPipeline(t *testing.T) {
	w := syngen.Generate(syngen.Config{M: 60, NoisePercent: 10, NumData: 6, Seed: 5})
	matched := 0
	for i, g2 := range w.G2s {
		m := NewMatcher(w.G1, g2, w.Matrix(g2), 0.75)
		sigma := m.MaxCard()
		if err := m.Verify(sigma, false); err != nil {
			t.Fatalf("data %d: %v", i, err)
		}
		if m.QualCard(sigma) >= 0.75 {
			matched++
		}
		// Ground truth always exists and validates.
		truth := Mapping{}
		for v, u := range w.Truth[i] {
			truth[NodeID(v)] = u
		}
		if err := m.Verify(truth, true); err != nil {
			t.Fatalf("data %d: ground truth invalid: %v", i, err)
		}
	}
	if matched < 4 {
		t.Errorf("matched %d/6 at low noise, want ≥ 4", matched)
	}
}

func TestIntegrationPHomDominatesBaselines(t *testing.T) {
	// On the edge-to-path workload, p-hom must match where simulation
	// cannot and MCS struggles — the paper's Table 3 story at unit scale.
	w := syngen.Generate(syngen.Config{M: 25, NoisePercent: 25, NumData: 6, Seed: 9})
	phom, sim, mcsWins := 0, 0, 0
	for _, g2 := range w.G2s {
		mat := w.Matrix(g2)
		m := NewMatcher(w.G1, g2, mat, 0.75)
		if m.QualCard(m.MaxCard()) >= 0.75 {
			phom++
		}
		if Simulates(w.G1, g2, mat, 0.75) {
			sim++
		}
		res, err := mcs.Find(w.G1, g2, mat, mcs.Options{Xi: 0.75, Budget: 300 * time.Millisecond})
		if err == nil && float64(res.Cardinality())/float64(w.G1.NumNodes()) >= 0.75 {
			mcsWins++
		}
	}
	if phom < sim {
		t.Errorf("p-hom matched %d but simulation %d on path-noise data", phom, sim)
	}
	if phom < mcsWins {
		t.Errorf("p-hom matched %d but MCS %d on path-noise data", phom, mcsWins)
	}
	if phom == 0 {
		t.Error("p-hom should match at least one data graph")
	}
}

func TestIntegrationReductionToMatcher(t *testing.T) {
	// The hardness constructions flow through the public pipeline too.
	f := &reduction.ThreeSAT{
		NumVars: 4,
		Clauses: []reduction.Clause{
			{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
			{{Var: 1, Neg: true}, {Var: 2}, {Var: 3}},
		},
	}
	r, err := reduction.FromThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInstance(r.G1, r.G2, r.Mat, r.Xi)
	m, ok := in.Decide()
	if !ok {
		t.Fatal("satisfiable instance must be p-hom")
	}
	if !f.Evaluate(r.AssignmentFromMapping(m)) {
		t.Fatal("decoded assignment must satisfy")
	}
}

func TestIntegrationExperimentHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("harness test is slow")
	}
	pt := experiments.RunSynthetic(experiments.SynConfig{M: 30, Noise: 10, NumData: 3, Seed: 2})
	for _, alg := range experiments.OurAlgorithms {
		if pt.Seconds[alg] <= 0 {
			t.Errorf("%s: no time recorded", alg)
		}
	}
	cfg := experiments.WebConfig{Pages: [3]int{400, 300, 300}, Versions: 3, Seed: 4, MCSBudget: 100 * time.Millisecond}
	sites := experiments.GenerateSites(cfg)
	rows := experiments.Table2(sites)
	if len(rows) != 3 {
		t.Fatalf("table 2 rows = %d", len(rows))
	}
}

func TestIntegrationJSONRoundTripThroughMatcher(t *testing.T) {
	g1 := FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	data, err := g1.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	g2 := graph.New(0)
	if err := g2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if q := m.QualCard(m.MaxCard()); q != 1 {
		t.Fatalf("round-tripped graph should self-match, qualCard = %v", q)
	}
}

func TestIntegrationPathLimitOption(t *testing.T) {
	g1 := FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	g2 := FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	mat := LabelEquality(g1, g2)
	if _, ok := NewMatcher(g1, g2, mat, 0.5, WithPathLimit(1)).IsPHom(); ok {
		t.Fatal("path limit 1 must reject path-only data")
	}
	if _, ok := NewMatcher(g1, g2, mat, 0.5, WithPathLimit(2)).IsPHom(); !ok {
		t.Fatal("path limit 2 must accept a 2-hop path")
	}
	if _, ok := NewMatcher(g1, g2, mat, 0.5).IsPHom(); !ok {
		t.Fatal("unbounded must accept")
	}
}
