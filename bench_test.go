package graphmatch

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 6), plus the ablations called out in DESIGN.md §5.
// Benchmarks run scaled-down workloads so `go test -bench=.` finishes in
// minutes; `cmd/experiments` regenerates the full-scale rows and series.
//
// Figure 5 benchmarks report the accuracy series via ReportMetric
// (accuracy_pct) while timing one matching run per iteration; Figure 6
// benchmarks time each algorithm separately at the swept settings.

import (
	"fmt"
	"testing"
	"time"

	"graphmatch/internal/core"
	"graphmatch/internal/experiments"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/simulation"
	"graphmatch/internal/syngen"
	"graphmatch/internal/webgen"
)

// --- Table 2: Web graphs and skeletons ---

func BenchmarkTable2_SkeletonExtraction(b *testing.B) {
	arch := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 1000, Versions: 1, Seed: 1})
	g := arch.Versions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk1 := webgen.Skeleton(g, 0.2)
		sk2 := webgen.TopKSkeleton(g, 20)
		if sk1.NumNodes() == 0 || sk2.NumNodes() == 0 {
			b.Fatal("empty skeleton")
		}
	}
}

// --- Table 3: accuracy and scalability on Web archives ---

func table3Instances(b *testing.B, skSet int) map[string]*core.Instance {
	b.Helper()
	sites := experiments.GenerateSites(experiments.WebConfig{
		Pages:    [3]int{800, 500, 500},
		Versions: 3,
		Seed:     7,
	})
	out := make(map[string]*core.Instance)
	for _, s := range sites {
		sks := s.Sk1
		if skSet == 1 {
			sks = s.Sk2
		}
		pattern, data := sks[0], sks[len(sks)-1]
		mat := simmatrix.FromContent(pattern, data, 4)
		out[s.Name] = core.NewInstance(pattern, data, mat, 0.75)
	}
	return out
}

func BenchmarkTable3_WebMatching(b *testing.B) {
	type algo struct {
		name string
		run  func(in *core.Instance) core.Mapping
	}
	algos := []algo{
		{"compMaxCard", func(in *core.Instance) core.Mapping { return in.CompMaxCard() }},
		{"compMaxCard1-1", func(in *core.Instance) core.Mapping { return in.CompMaxCard11() }},
		{"compMaxSim", func(in *core.Instance) core.Mapping { return in.CompMaxSim() }},
		{"compMaxSim1-1", func(in *core.Instance) core.Mapping { return in.CompMaxSim11() }},
	}
	for skSet, skName := range []string{"skeletons1", "skeletons2"} {
		instances := table3Instances(b, skSet)
		for _, a := range algos {
			for site, in := range instances {
				b.Run(fmt.Sprintf("%s/%s/%s", skName, a.name, site), func(b *testing.B) {
					var q float64
					for i := 0; i < b.N; i++ {
						m := a.run(in)
						q = in.QualCard(m)
					}
					b.ReportMetric(q*100, "qualCard_pct")
				})
			}
		}
	}
}

func BenchmarkTable3_SF(b *testing.B) {
	instances := table3Instances(b, 0)
	for site, in := range instances {
		b.Run(site, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunOne(experiments.SF, in, 0, 0.75)
			}
		})
	}
}

func BenchmarkTable3_cdkMCS_Top20(b *testing.B) {
	instances := table3Instances(b, 1)
	for site, in := range instances {
		b.Run(site, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunOne(experiments.CDKMCS, in, 500*time.Millisecond, 0.75)
			}
		})
	}
}

// --- Figures 5/6: synthetic workloads ---

// synInstances prepares the (G1, G2) instances of one synthetic point.
func synInstances(m int, noise, xi float64, numData int, seed int64) []*core.Instance {
	w := syngen.Generate(syngen.Config{M: m, NoisePercent: noise, NumData: numData, Seed: seed})
	var out []*core.Instance
	for _, g2 := range w.G2s {
		out = append(out, core.NewInstance(w.G1, g2, w.Matrix(g2), xi))
	}
	return out
}

// benchAccuracyPoint times compMaxCard per matching run and reports the
// point's accuracy across the prepared data graphs.
func benchAccuracyPoint(b *testing.B, ins []*core.Instance) {
	matched := 0
	for _, in := range ins {
		if in.QualCard(in.CompMaxCard()) >= 0.75 {
			matched++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := ins[i%len(ins)]
		in.CompMaxCard()
	}
	b.ReportMetric(100*float64(matched)/float64(len(ins)), "accuracy_pct")
}

func BenchmarkFig5a_AccuracyVsSize(b *testing.B) {
	for _, m := range []int{50, 100, 200} {
		ins := synInstances(m, 10, 0.75, 5, int64(m))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) { benchAccuracyPoint(b, ins) })
	}
}

func BenchmarkFig5b_AccuracyVsNoise(b *testing.B) {
	for _, noise := range []float64{2, 10, 20} {
		ins := synInstances(100, noise, 0.75, 5, int64(noise))
		b.Run(fmt.Sprintf("noise=%g", noise), func(b *testing.B) { benchAccuracyPoint(b, ins) })
	}
}

func BenchmarkFig5c_AccuracyVsThreshold(b *testing.B) {
	for _, xi := range []float64{0.5, 0.75, 1.0} {
		ins := synInstances(100, 10, xi, 5, 3)
		b.Run(fmt.Sprintf("xi=%g", xi), func(b *testing.B) { benchAccuracyPoint(b, ins) })
	}
}

// benchAlgorithms times every Fig. 6 competitor on one instance.
func benchAlgorithms(b *testing.B, in *core.Instance) {
	b.Run("compMaxCard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxCard()
		}
	})
	b.Run("compMaxCard1-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxCard11()
		}
	})
	b.Run("compMaxSim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxSim()
		}
	})
	b.Run("compMaxSim1-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxSim11()
		}
	})
	b.Run("graphSimulation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simulation.Compute(in.G1, in.G2, in.Mat, in.Xi)
		}
	})
}

func BenchmarkFig6a_TimeVsSize(b *testing.B) {
	for _, m := range []int{50, 100, 200} {
		ins := synInstances(m, 10, 0.75, 1, int64(m))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) { benchAlgorithms(b, ins[0]) })
	}
}

func BenchmarkFig6b_TimeVsNoise(b *testing.B) {
	for _, noise := range []float64{2, 10, 20} {
		ins := synInstances(100, noise, 0.75, 1, int64(noise))
		b.Run(fmt.Sprintf("noise=%g", noise), func(b *testing.B) { benchAlgorithms(b, ins[0]) })
	}
}

func BenchmarkFig6c_TimeVsThreshold(b *testing.B) {
	for _, xi := range []float64{0.5, 0.75, 1.0} {
		ins := synInstances(100, 10, xi, 1, 5)
		b.Run(fmt.Sprintf("xi=%g", xi), func(b *testing.B) { benchAlgorithms(b, ins[0]) })
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_DirectVsNaive quantifies why compMaxCard operates on
// the matching list instead of materialising the product graph: the naive
// algorithm is O(|V1|³|V2|³).
func BenchmarkAblation_DirectVsNaive(b *testing.B) {
	ins := synInstances(30, 10, 0.75, 1, 11)
	in := ins[0]
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxCard()
		}
	})
	b.Run("naive-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.NaiveMaxCard()
		}
	})
}

// BenchmarkAblation_PartitionG1 measures the Appendix B partitioning
// optimisation on a pattern that splits into components.
func BenchmarkAblation_PartitionG1(b *testing.B) {
	// Pattern of several disconnected chains; data with matching labels.
	var labels []string
	var edges [][2]int
	for c := 0; c < 10; c++ {
		base := len(labels)
		for i := 0; i < 8; i++ {
			labels = append(labels, fmt.Sprintf("c%d_%d", c, i))
			if i > 0 {
				edges = append(edges, [2]int{base + i - 1, base + i})
			}
		}
	}
	g1 := graph.FromEdgeList(labels, edges)
	g2 := g1.Clone()
	in := core.NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.75)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxCard()
		}
	})
	b.Run("partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.PartitionedMaxCard()
		}
	})
}

// BenchmarkAblation_CompressClosure compares matching against the raw
// closure with matching against the SCC-compressed G2* on cyclic data.
func BenchmarkAblation_CompressClosure(b *testing.B) {
	// Data graph with chunky SCCs: rings of 8 connected in a chain.
	var labels []string
	var edges [][2]int
	for r := 0; r < 12; r++ {
		base := len(labels)
		for i := 0; i < 8; i++ {
			labels = append(labels, fmt.Sprintf("r%d_%d", r, i))
			edges = append(edges, [2]int{base + i, base + (i+1)%8})
		}
		if r > 0 {
			edges = append(edges, [2]int{base - 8, base})
		}
	}
	g2 := graph.FromEdgeList(labels, edges)
	g1, _ := g2.InducedSubgraph(graph.TopKByDegree(g2, 24))
	in := core.NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.75)
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompMaxCard()
		}
	})
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in.CompressedMaxCard()
		}
	})
}

// BenchmarkAblation_PickOrder compares Fig. 4's max-|good| node selection
// with an arbitrary (first-in-list) pick.
func BenchmarkAblation_PickOrder(b *testing.B) {
	ins := synInstances(80, 10, 0.75, 1, 13)
	in := ins[0]
	b.Run("max-good", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = len(in.CompMaxCardOpts(core.MatchOptions{}))
		}
		b.ReportMetric(float64(size), "matched_nodes")
	})
	b.Run("first", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = len(in.CompMaxCardOpts(core.MatchOptions{ArbitraryPick: true}))
		}
		b.ReportMetric(float64(size), "matched_nodes")
	})
}
