package graphmatch

import (
	"context"
	"testing"
)

// TestEngineAgreesWithMatcher drives the public serving API against the
// public one-shot API on the paper's Figure 1 instance: for every
// algorithm the engine must return exactly what a direct Matcher does.
func TestEngineAgreesWithMatcher(t *testing.T) {
	gp, g, mat := fig1()
	_ = mat // the engine derives its own matrix; fig1 uses label equality semantics

	eng := NewEngine(EngineOptions{Workers: 2})
	defer eng.Close()
	if err := eng.Register("store", g); err != nil {
		t.Fatal(err)
	}

	m := NewMatcher(gp, g, LabelEquality(gp, g), 0.9)
	direct := map[EngineAlgorithm]Mapping{
		AlgoMaxCard:   m.MaxCard(),
		AlgoMaxCard11: m.MaxCard11(),
		AlgoMaxSim:    m.MaxSim(),
		AlgoMaxSim11:  m.MaxSim11(),
	}
	ctx := context.Background()
	for algo, want := range direct {
		res := eng.Match(ctx, MatchRequest{Pattern: gp, GraphName: "store", Algo: algo, Xi: 0.9})
		if res.Err != nil {
			t.Fatalf("%s: %v", algo, res.Err)
		}
		if len(res.Mapping) != len(want) {
			t.Errorf("%s: engine mapped %d nodes, Matcher %d", algo, len(res.Mapping), len(want))
		}
		for v, u := range want {
			if res.Mapping[v] != u {
				t.Errorf("%s: σ(%d) = %d, Matcher says %d", algo, v, res.Mapping[v], u)
			}
		}
		if got, want := res.QualCard, m.QualCard(want); got != want {
			t.Errorf("%s: qualCard %v, Matcher %v", algo, got, want)
		}
		if err := m.Verify(res.Mapping, algo == AlgoMaxCard11 || algo == AlgoMaxSim11); err != nil {
			t.Errorf("%s: engine mapping invalid: %v", algo, err)
		}
	}

	// Exact decision through the engine vs the Matcher.
	res := eng.Match(ctx, MatchRequest{Pattern: gp, GraphName: "store", Algo: AlgoDecide, Xi: 0.9})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	_, holds := m.IsPHom()
	if res.Holds != holds {
		t.Errorf("decide: engine %v, Matcher %v", res.Holds, holds)
	}

	// The registered closure was shared: hits must outnumber the single
	// registration miss.
	s := eng.Catalog().Stats()
	if s.Misses != 1 || s.Hits < 4 {
		t.Errorf("closure cache not shared: %+v", s)
	}
}

// TestEngineBatch exercises MatchBatch through the public API.
func TestEngineBatch(t *testing.T) {
	gp, g, _ := fig1()
	eng := NewEngine(EngineOptions{})
	defer eng.Close()
	if err := eng.Register("store", g); err != nil {
		t.Fatal(err)
	}
	reqs := []MatchRequest{
		{Pattern: gp, GraphName: "store", Algo: AlgoMaxCard, Xi: 0.9},
		{Pattern: gp, GraphName: "store", Algo: AlgoMaxSim, Xi: 0.9},
		{Pattern: gp, GraphName: "store", Algo: AlgoSimulation, Xi: 0.9},
	}
	results := eng.MatchBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("request %d: %v", i, r.Err)
		}
	}
	if st := eng.Stats(); st.Batches != 1 || st.Requests != 3 {
		t.Errorf("engine stats %+v", st)
	}
}
