// Synthetic workload walk-through — the paper's Exp-2 in miniature.
//
// The Section 6 generator derives noisy data graphs from a random pattern:
// edges stretch into paths of one to five nodes, decoy subgraphs attach to
// original nodes, and labels carry grouped random similarities. Every data
// graph still embeds the pattern (the generator records the ground-truth
// embedding), so the approximation algorithms are judged on whether they
// reach the 0.75 quality bar — and graph simulation, the edge-to-edge
// baseline, is expected to fail.
//
// Run with:
//
//	go run ./examples/synthetic
package main

import (
	"fmt"

	"graphmatch"
	"graphmatch/internal/syngen"
)

func main() {
	w := syngen.Generate(syngen.Config{
		M:            120,
		NoisePercent: 12,
		NumData:      8,
		Seed:         2010,
	})
	fmt.Printf("pattern: %d nodes, %d edges\n\n", w.G1.NumNodes(), w.G1.NumEdges())
	fmt.Println("data   |V2|   qualCard   qualSim   1-1      simulation")

	matched := 0
	for i, g2 := range w.G2s {
		mat := w.Matrix(g2)
		m := graphmatch.NewMatcher(w.G1, g2, mat, 0.75)
		card := m.QualCard(m.MaxCard())
		sim := m.QualSim(m.MaxSim())
		card11 := m.QualCard(m.MaxCard11())
		simMatch := graphmatch.Simulates(w.G1, g2, mat, 0.75)
		if card >= 0.75 {
			matched++
		}
		fmt.Printf("  %2d   %4d     %.2f       %.2f     %.2f     %v\n",
			i, g2.NumNodes(), card, sim, card11, simMatch)
	}
	fmt.Printf("\naccuracy (qualCard ≥ 0.75): %d/%d\n", matched, len(w.G2s))

	// The recorded ground truth always exists — verify one embedding.
	truth := graphmatch.Mapping{}
	for v, u := range w.Truth[0] {
		truth[graphmatch.NodeID(v)] = u
	}
	m := graphmatch.NewMatcher(w.G1, w.G2s[0], w.Matrix(w.G2s[0]), 0.75)
	if err := m.Verify(truth, true); err != nil {
		panic(err)
	}
	fmt.Println("ground-truth embedding verified: every data graph is a true match")
}
