// Quickstart: the paper's Figure 1 scenario end to end.
//
// Two online stores are modelled as node-labelled digraphs: the pattern Gp
// describes the catalogue structure a buyer expects; the data graph G is a
// real store whose pages use different names and deeper navigation. Plain
// homomorphism and subgraph isomorphism both fail here — no label-equal,
// edge-to-edge mapping exists — while p-homomorphism matches the sites by
// allowing similar (not equal) nodes and edge-to-path mappings.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"graphmatch"
)

func main() {
	// Pattern store Gp: A sells books (textbooks, audiobooks) and audio
	// (audiobooks, albums).
	gp := graphmatch.FromEdgeList(
		[]string{"A", "books", "audio", "textbooks", "abooks", "albums"},
		[][2]int{
			{0, 1}, // A → books
			{0, 2}, // A → audio
			{1, 3}, // books → textbooks
			{1, 4}, // books → abooks
			{2, 4}, // audio → abooks
			{2, 5}, // audio → albums
		},
	)

	// Data store G: same capability, different vocabulary and an extra
	// navigation level (categories, features, genres).
	g := graphmatch.FromEdgeList(
		[]string{"B", "books", "sports", "digital", "categories", "audio",
			"school", "arts", "audiobooks", "booksets", "DVDs", "CDs",
			"features", "genres", "albums"},
		[][2]int{
			{0, 1}, {0, 2}, {0, 3}, // B → books, sports, digital
			{1, 4}, {1, 9}, {1, 5}, // books → categories, booksets, audio
			{4, 6}, {4, 7}, // categories → school, arts
			{5, 8}, {5, 10}, {5, 11}, // audio → audiobooks, DVDs, CDs
			{3, 12}, {3, 13}, // digital → features, genres
			{12, 8},  // features → audiobooks
			{13, 14}, // genres → albums
		},
	)

	// The page checker's similarity matrix mate() of Example 3.1.
	mate := graphmatch.SparseMatrix()
	mate.Set(0, 0, 0.7)   // A ~ B
	mate.Set(2, 3, 0.7)   // audio ~ digital
	mate.Set(1, 1, 1.0)   // books ~ books
	mate.Set(4, 8, 0.8)   // abooks ~ audiobooks
	mate.Set(1, 9, 0.6)   // books ~ booksets
	mate.Set(3, 6, 0.6)   // textbooks ~ school
	mate.Set(5, 14, 0.85) // albums ~ albums

	m := graphmatch.NewMatcher(gp, g, mate, 0.6)

	// Conventional matching fails: graph simulation demands edge-to-edge
	// images.
	fmt.Println("graph simulation matches:", graphmatch.Simulates(gp, g, mate, 0.6))

	// p-hom succeeds — and even injectively (Example 3.2).
	sigma, ok := m.IsPHom11()
	fmt.Println("1-1 p-hom:", ok)
	if !ok {
		log.Fatal("expected a 1-1 p-hom mapping")
	}
	for _, v := range sigma.Domain() {
		fmt.Printf("  %-10s -> %s\n", gp.Label(v), g.Label(sigma[v]))
	}

	// The approximation algorithms find the same full mapping without the
	// exponential search, with quality guarantees on partial matches.
	approx := m.MaxCard()
	fmt.Printf("compMaxCard: qualCard=%.2f qualSim=%.2f\n",
		m.QualCard(approx), m.QualSim(approx))
	if err := m.Verify(approx, false); err != nil {
		log.Fatalf("invalid mapping: %v", err)
	}
}
