// Catalog-wide graph search — the paper's Web-mirror question asked
// over a fleet of graphs at once.
//
// Exp-1 matches one pattern against one candidate graph at a time.
// A serving system holds many graphs — say, archived versions of many
// Web sites — and the natural query is a search: "here is a site
// skeleton; which of my registered graphs is it?". This example
// registers three sites' archives (store, organization, newspaper;
// several versions each) with the serving engine and runs one search
// per site skeleton. Stage 1 prunes the catalog with the shingle
// prefilter — versions of the other sites share almost no page text
// with the pattern, so they never reach the matcher — and stage 2
// ranks the survivors by p-hom match quality.
//
// The same search is one HTTP call against phomd:
//
//	curl -X POST localhost:8080/v1/search \
//	     -d '{"pattern": {...}, "algo": "maxsim", "xi": 0.75,
//	          "sim": "content", "k": 5, "min_resemblance": 0.1}'
//
// Run with:
//
//	go run ./examples/search
package main

import (
	"context"
	"fmt"
	"log"

	"graphmatch"
	"graphmatch/internal/webgen"
)

func main() {
	const versions = 6

	eng := graphmatch.NewEngine(graphmatch.EngineOptions{})
	defer eng.Close()

	// Three sites, each archived over several versions — 18 registered
	// graphs in all. Real catalogs hold hundreds; see cmd/benchsearch.
	sites := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	patterns := make([]*graphmatch.Graph, len(sites))
	for i, cat := range sites {
		arch := webgen.Generate(webgen.Config{
			Category: cat,
			Pages:    400,
			Versions: versions,
			Seed:     int64(10 + i),
		})
		for v, g := range arch.Versions {
			name := fmt.Sprintf("%s/v%d", cat, v)
			if err := eng.Register(name, g); err != nil {
				log.Fatal(err)
			}
		}
		// The query: the oldest version's hub skeleton, as in Exp-1.
		patterns[i] = webgen.TopKSkeleton(arch.Versions[0], 10)
	}

	ctx := context.Background()
	for i, cat := range sites {
		res := eng.Search(ctx, graphmatch.SearchRequest{
			Pattern:        patterns[i],
			Algo:           graphmatch.AlgoMaxSim,
			Xi:             0.75,
			Sim:            graphmatch.SimContent,
			K:              5,
			MinResemblance: 0.1,
		})
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		st := res.Stats
		fmt.Printf("query: %s skeleton (%d nodes) — %d graphs, %d pruned by the prefilter (%.0f%%), %d matched\n",
			cat, patterns[i].NumNodes(), st.Graphs, st.Pruned, st.PruneRate*100, st.Matched)
		for rank, h := range res.Hits {
			fmt.Printf("  #%d  %-16s qualSim %.3f  (containment %.2f)\n",
				rank+1, h.Graph, h.QualSim, h.Containment)
		}
		fmt.Println()
	}

	fmt.Println("Every ranking leads with the queried site's own versions:")
	fmt.Println("the prefilter skipped the other sites without ever running")
	fmt.Println("the matcher on them, and the p-hom qualities ordered the")
	fmt.Println("site's versions newest-drift last — Exp-1 as one search.")
}
