// Plagiarism detection over program dependence graphs — one of the
// motivating applications in the paper's introduction (GPlag [20]).
//
// A program dependence graph (PDG) has one node per statement, labelled
// with the statement kind, and edges for control/data dependences. A
// plagiarised program preserves the dependence *structure* while renaming
// variables and inserting laundering statements — which stretches original
// dependence edges into paths. That is precisely the transformation p-hom
// tolerates and subgraph isomorphism does not.
//
// Run with:
//
//	go run ./examples/plagiarism
package main

import (
	"fmt"

	"graphmatch"
)

// original is the PDG of a small summation routine:
//
//	total := 0
//	for i := range items    (loop)
//	    total += items[i]   (accumulate)
//	return total
func original() *graphmatch.Graph {
	return graphmatch.FromEdgeList(
		[]string{"assign", "loop", "assign-acc", "return"},
		[][2]int{
			{0, 2}, // total's definition feeds the accumulation
			{1, 2}, // loop controls the accumulation
			{2, 3}, // accumulated value feeds the return
			{0, 3}, // initial value also reaches the return
		},
	)
}

// plagiarised is the same routine after laundering: variables renamed,
// a no-op temp copied in the middle of the def-use chains, and an extra
// logging statement attached — classic insertion attacks.
func plagiarised() *graphmatch.Graph {
	return graphmatch.FromEdgeList(
		[]string{"assign", "assign-tmp", "loop", "assign-acc", "call-log", "assign-tmp", "return"},
		[][2]int{
			{0, 1}, // total → tmp (laundering copy)
			{1, 3}, // tmp feeds the accumulation
			{2, 3}, // loop controls the accumulation
			{2, 4}, // loop also triggers logging (inserted noise)
			{3, 5}, // accumulation → tmp2
			{5, 6}, // tmp2 feeds the return
			{1, 6}, // initial value still reaches the return
		},
	)
}

// independent computes a maximum instead — different dependence shape.
func independent() *graphmatch.Graph {
	return graphmatch.FromEdgeList(
		[]string{"assign", "loop", "branch", "assign-acc", "return"},
		[][2]int{
			{1, 2}, // loop controls a comparison
			{2, 3}, // branch guards the update
			{3, 2}, // updated max feeds the next comparison
			{3, 4},
		},
	)
}

func main() {
	pdg := original()

	check := func(name string, suspect *graphmatch.Graph) {
		// Statement kinds match by label; "assign" kinds are mutually
		// similar at 0.8 (renaming-insensitive).
		mat := graphmatch.SparseMatrix()
		for v := 0; v < pdg.NumNodes(); v++ {
			for u := 0; u < suspect.NumNodes(); u++ {
				lv, lu := pdg.Label(graphmatch.NodeID(v)), suspect.Label(graphmatch.NodeID(u))
				switch {
				case lv == lu:
					mat.Set(graphmatch.NodeID(v), graphmatch.NodeID(u), 1)
				case isAssign(lv) && isAssign(lu):
					mat.Set(graphmatch.NodeID(v), graphmatch.NodeID(u), 0.8)
				}
			}
		}
		m := graphmatch.NewMatcher(pdg, suspect, mat, 0.75)
		sigma := m.MaxCard11()
		q := m.QualCard(sigma)
		verdict := "clean"
		if q >= 0.75 {
			verdict = "PLAGIARISM SUSPECTED"
		}
		fmt.Printf("%-12s qualCard=%.2f  %s\n", name, q, verdict)
		for _, v := range sigma.Domain() {
			fmt.Printf("    %-12s -> %s\n", pdg.Label(v), suspect.Label(sigma[v]))
		}
	}

	check("suspect A", plagiarised())
	check("suspect B", independent())
}

func isAssign(label string) bool {
	return len(label) >= 6 && label[:6] == "assign"
}
