// The serving example runs the full phomd stack in one process: it
// starts the HTTP server on an ephemeral port, registers a data graph
// once, fires concurrent batch match requests at it like independent
// clients would, and then reads /v1/stats to show that the data
// graph's transitive closure was computed exactly once and shared by
// every request.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
)

func main() {
	// Boot the server exactly as cmd/phomd does, on a random port.
	eng := engine.New(engine.Options{})
	defer eng.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.New(eng)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("phomd serving on %s\n\n", base)

	// Register one data graph: a random "web site" of 300 pages whose
	// section labels repeat, so patterns have many candidate images.
	data := randomSite(300, 4)
	post(base+"/v1/graphs", httpapi.RegisterRequest{Name: "site", Graph: data}, nil)
	fmt.Printf("registered %q: %d nodes, %d edges (closure precomputed once)\n\n",
		"site", data.NumNodes(), data.NumEdges())

	// Three client goroutines each send one batch over all four
	// approximation algorithms — twelve requests sharing one closure.
	pattern := carvePattern(data, 10)
	xi := 0.9
	var batch httpapi.BatchRequest
	for _, algo := range []string{"maxcard", "maxcard11", "maxsim", "maxsim11"} {
		batch.Requests = append(batch.Requests, httpapi.MatchRequest{
			Pattern: pattern, Graph: "site", Algo: algo, Xi: &xi,
		})
	}
	var wg sync.WaitGroup
	results := make([]httpapi.BatchResponse, 3)
	for c := range results {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			post(base+"/v1/match/batch", batch, &results[c])
		}(c)
	}
	wg.Wait()

	for _, res := range results[0].Results {
		fmt.Printf("%-10s matched %2d/%2d nodes  qualCard=%.3f qualSim=%.3f  %dµs\n",
			res.Algo, res.Matched, res.PatternNodes, res.QualCard, res.QualSim, res.ElapsedUS)
	}

	var stats httpapi.StatsResponse
	get(base+"/v1/stats", &stats)
	fmt.Printf("\nengine: %d requests (%d executed, %d coalesced) on %d workers\n",
		stats.Engine.Requests, stats.Engine.Executed, stats.Engine.Coalesced, stats.Engine.Workers)
	fmt.Printf("catalog: %d closure hits, %d misses (hit rate %.0f%%) — closure built once at registration\n",
		stats.Catalog.Hits, stats.Catalog.Misses, stats.Catalog.HitRate*100)
}

// randomSite builds a deterministic random digraph with a small label
// alphabet.
func randomSite(n, avgDeg int) *graph.Graph {
	rng := rand.New(rand.NewSource(7))
	sections := []string{"home", "news", "sports", "arts", "video", "forum", "shop", "help"}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(sections[i%len(sections)])
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

// carvePattern takes an induced subgraph of the data graph, so the
// pattern certainly matches somewhere.
func carvePattern(g *graph.Graph, size int) *graph.Graph {
	rng := rand.New(rand.NewSource(11))
	seen := map[graph.NodeID]bool{}
	var keep []graph.NodeID
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
