#!/usr/bin/env sh
# Boots a complete sharded phomd cluster on localhost — no docker, no
# external dependencies beyond the go toolchain and curl:
#
#   3 shards × 2 replicas (each primary persists to its own WAL; each
#   follower tails its primary over HTTP) behind one stateless router.
#
# Then registers a generated web-archive catalog through the router
# (the ring spreads it across the shards), runs a catalog-wide search
# through the scatter-gather path, and prints the cluster audit.
# Everything runs in a temp dir and is torn down on exit.
#
#   sh examples/cluster/run.sh
set -eu

cd "$(dirname "$0")/../.."
work=$(mktemp -d /tmp/phomd-cluster.XXXXXX)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== building =="
go build -o "$work/phomd" ./cmd/phomd
go build -o "$work/phom" ./cmd/phom
go build -o "$work/datagen" ./cmd/datagen

echo "== generating a web-archive catalog =="
for cat in store organization newspaper; do
	mkdir -p "$work/data/$cat"
	"$work/datagen" -kind web -category "$cat" -versions 3 -pages 40 \
		-seed 7 -out "$work/data/$cat" >/dev/null
done

# --- shards: 3 × (primary :920N0 + follower :920N1) -------------------
echo "== starting 3 shards × 2 replicas + router =="
spec=""
for i in 0 1 2; do
	p=$((9200 + i * 10))
	f=$((p + 1))
	"$work/phomd" -addr "127.0.0.1:$p" -store "$work/s$i-primary" \
		>"$work/s$i-primary.log" 2>&1 &
	pids="$pids $!"
	"$work/phomd" -addr "127.0.0.1:$f" -store "$work/s$i-follower" \
		-follow "http://127.0.0.1:$p" -ready-max-lag 0 \
		>"$work/s$i-follower.log" 2>&1 &
	pids="$pids $!"
	spec="${spec}s$i=http://127.0.0.1:$p,http://127.0.0.1:$f;"
done

# --- router ----------------------------------------------------------
router=127.0.0.1:9280
"$work/phomd" -router -addr "$router" -shards "$spec" -route-max-lag 0 \
	>"$work/router.log" 2>&1 &
pids="$pids $!"

ready() { curl -fsS -o /dev/null "http://$1/readyz" 2>/dev/null; }
for i in $(seq 1 100); do
	if ready "$router"; then break; fi
	[ "$i" = 100 ] && { echo "cluster never became ready; router log:"; cat "$work/router.log"; exit 1; }
	sleep 0.1
done
echo "router ready at http://$router ($(curl -fsS "http://$router/v1/cluster" | jq -r '"ring v\(.ring.version): \(.ring.shards | length) shards"'))"

# --- register the catalog through the router -------------------------
echo "== registering catalog through the router =="
n=0
for f in "$work"/data/*/version_*.json; do
	name="$(basename "$(dirname "$f")")-$(basename "$f" .json)"
	{ printf '{"name":"%s","graph":' "$name"; cat "$f"; printf '}'; } |
		curl -fsS -o /dev/null -X POST "http://$router/v1/graphs" -d @-
	n=$((n + 1))
done
echo "registered $n graphs; placement:"
"$work/phom" cluster -addr "http://$router" | sed 's/^/  /'

# --- a scatter-gather search -----------------------------------------
echo "== searching all shards (exact merged top-5) =="
{ printf '{"algo":"maxsim","sim":"content","k":5,"pattern":'
  cat "$work/data/store/skeleton1_0.json"; printf '}'; } |
	curl -fsS -X POST "http://$router/v1/search" -d @- |
	jq '{shards_served, hits: [.hits[] | {rank, graph, score}]}'

echo "== done (logs were in $work) =="
