// XML schema embedding — the information-preservation scenario the paper
// cites as a special case of p-hom (Fan & Bohannon, "Information
// Preserving XML Schema Embedding", reference [14]).
//
// A source schema (element types with subelement edges) embeds into an
// integrated target schema when every source type maps to a similar
// target type and every subelement edge maps to a *path* of target types
// — intermediate wrapper elements are exactly what integrated schemas
// introduce. That is 1-1 p-hom verbatim.
//
// Run with:
//
//	go run ./examples/schema
package main

import (
	"fmt"
	"log"

	"graphmatch"
)

func main() {
	// Source schema: a small book catalogue DTD.
	//
	//	catalogue → book → (title, author, price)
	source := graphmatch.FromEdgeList(
		[]string{"catalogue", "book", "title", "author", "price"},
		[][2]int{{0, 1}, {1, 2}, {1, 3}, {1, 4}},
	)

	// Target schema: a merged bibliography-and-store schema. Books hide
	// under publications/item, authors under a contributors wrapper, and
	// prices under an offer element.
	target := graphmatch.FromEdgeList(
		[]string{"library", "publications", "item", "heading", "contributors",
			"person", "offer", "amount", "journal"},
		[][2]int{
			{0, 1}, // library → publications
			{1, 2}, // publications → item
			{1, 8}, // publications → journal
			{2, 3}, // item → heading
			{2, 4}, // item → contributors
			{4, 5}, // contributors → person
			{2, 6}, // item → offer
			{6, 7}, // offer → amount
		},
	)

	// Type similarity from a schema matcher (names and content models).
	mat := graphmatch.SparseMatrix()
	mat.Set(0, 0, 0.8) // catalogue ~ library
	mat.Set(0, 1, 0.7) // catalogue ~ publications
	mat.Set(1, 2, 0.9) // book ~ item
	mat.Set(2, 3, 0.8) // title ~ heading
	mat.Set(3, 5, 0.8) // author ~ person
	mat.Set(4, 7, 0.9) // price ~ amount

	m := graphmatch.NewMatcher(source, target, mat, 0.7)
	sigma, ok := m.IsPHom11()
	if !ok {
		log.Fatal("expected an embedding")
	}
	fmt.Println("schema embedding found (1-1 p-hom):")
	for _, v := range sigma.Domain() {
		fmt.Printf("  %-10s -> %s\n", source.Label(v), target.Label(sigma[v]))
	}

	// The edge book→author maps to the path item/contributors/person;
	// show the witness path.
	fmt.Println("\nwitness paths for source edges:")
	source.Edges(func(from, to graphmatch.NodeID) bool {
		path := target.ShortestPath(sigma[from], sigma[to])
		fmt.Printf("  %s→%s maps to", source.Label(from), source.Label(to))
		for _, u := range path {
			fmt.Printf(" /%s", target.Label(u))
		}
		fmt.Println()
		return true
	})

	// Wrapper elements are invisible to edge-to-edge notions: a path
	// limit of 1 (classical homomorphism semantics) rejects the same
	// embedding.
	strict := graphmatch.NewMatcher(source, target, mat, 0.7, graphmatch.WithPathLimit(1))
	if _, ok := strict.IsPHom11(); ok {
		log.Fatal("edge-to-edge should fail on wrapped schemas")
	}
	fmt.Println("\nedge-to-edge matching (path limit 1) rejects the embedding —")
	fmt.Println("the wrapper elements require edge-to-path semantics.")
}
