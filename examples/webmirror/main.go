// Web mirror detection — the paper's Exp-1 scenario in miniature.
//
// An archive holds eleven versions of one Web site. Mirror detection asks
// whether a later snapshot is "the same site" as the original: pages may
// have been rewritten, sections reorganised, and links rerouted, so exact
// matching fails, but the navigational structure and page contents remain
// similar. The pipeline is exactly the paper's: extract degree-based
// skeletons, derive node similarity from shingled page text, and run the
// p-hom approximation algorithms with the 0.75 match bar.
//
// Run with:
//
//	go run ./examples/webmirror
package main

import (
	"fmt"

	"graphmatch"
	"graphmatch/internal/webgen"
)

func main() {
	// A newspaper archive: the category with the fastest churn, so later
	// versions drift away from the original.
	arch := webgen.Generate(webgen.Config{
		Category: webgen.Newspaper,
		Pages:    1500,
		Versions: 11,
		Seed:     7,
	})

	// The oldest version's skeleton is the pattern (deg ≥ avg + 0.2·max).
	pattern := webgen.Skeleton(arch.Versions[0], 0.2)
	fmt.Printf("pattern skeleton: %d hub pages, %d links\n\n",
		pattern.NumNodes(), pattern.NumEdges())

	fmt.Println("version   skeleton   qualCard   verdict")
	for i, snapshot := range arch.Versions[1:] {
		data := webgen.Skeleton(snapshot, 0.2)
		// Node similarity from page text, as in the paper's Section 6.
		mat := graphmatch.ContentSimilarity(pattern, data, 4)
		m := graphmatch.NewMatcher(pattern, data, mat, 0.75)
		sigma := m.MaxCard()
		q := m.QualCard(sigma)
		verdict := "mirror"
		if q < 0.75 {
			verdict = "different"
		}
		fmt.Printf("   v%-2d     %4d       %.2f      %s\n",
			i+1, data.NumNodes(), q, verdict)
	}

	fmt.Println("\nNewspapers churn quickly: early versions mirror the")
	fmt.Println("original; later ones drift below the 0.75 bar — the effect")
	fmt.Println("behind site 3's lower accuracy in Table 3.")
}
