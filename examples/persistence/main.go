// The persistence example walks the durable-catalog lifecycle in one
// process: it opens a store-backed engine, registers web graphs,
// mutates one in place with live patches, restarts, and shows the
// replayed engine serving the same match and search results — the
// patched graph included — before compacting the WAL into a snapshot.
// Every mutation was fsynced before it was acknowledged, so the same
// replay holds after kill -9 (pinned by the engine's crash-recovery
// quickchecks, which reopen stores abandoned without Close).
//
//	go run ./examples/persistence
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"graphmatch"
	"graphmatch/internal/graph"
	"graphmatch/internal/webgen"
)

func main() {
	dir, err := os.MkdirTemp("", "phom-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("store directory: %s\n\n", dir)

	// Open a durable engine: every mutation below is fsynced to the WAL
	// before it is acknowledged.
	eng, err := graphmatch.OpenEngine(graphmatch.EngineOptions{StorePath: dir})
	if err != nil {
		log.Fatal(err)
	}

	// Register two archived versions of a generated web site.
	arch := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 150, Versions: 2, Seed: 7})
	for v, g := range arch.Versions {
		name := fmt.Sprintf("site/v%d", v)
		if err := eng.Register(name, g); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %-8s %5d nodes %5d edges (WAL'd + fsynced)\n",
			name, g.NumNodes(), g.NumEdges())
	}

	// Mutate site/v1 in place: add a page, rewire a link, edit content.
	// The patch flows through the catalog — closure invalidated and
	// rebuilt, search index refreshed — and into the WAL.
	g1, _ := eng.Catalog().Get("site/v1")
	n := g1.NumNodes()
	patched, err := eng.ApplyPatch("site/v1", &graphmatch.GraphPatch{
		AddNodes:   []graph.Node{{Label: "page", Weight: 1, Content: "breaking: a brand new page appears"}},
		SetContent: []graphmatch.ContentUpdate{{Node: 0, Content: "the root page, rewritten in place"}},
		AddEdges:   [][2]graph.NodeID{{0, graph.NodeID(n)}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patched  site/v1  %5d nodes %5d edges (live, no re-register)\n\n",
		patched.NumNodes(), patched.NumEdges())

	// Record pre-crash results.
	pattern := webgen.TopKSkeleton(arch.Versions[0], 10)
	ctx := context.Background()
	req := graphmatch.MatchRequest{
		Pattern: pattern, GraphName: "site/v1",
		Algo: graphmatch.AlgoMaxSim, Xi: 0.75, Sim: graphmatch.SimContent,
	}
	before := eng.Match(ctx, req)
	if before.Err != nil {
		log.Fatal(before.Err)
	}
	searchBefore := eng.Search(ctx, graphmatch.SearchRequest{
		Pattern: pattern, Algo: graphmatch.AlgoMaxSim, Xi: 0.75,
		Sim: graphmatch.SimKind("content"), K: 2,
	})
	fmt.Printf("pre-crash:  match qualSim=%.4f matched=%d; search top hit %q (%.4f)\n",
		before.QualSim, len(before.Mapping), searchBefore.Hits[0].Graph, searchBefore.Hits[0].Score)

	// Crash. The WAL already holds every acknowledged op fsynced, so
	// Close adds no durability here — it only drains workers and
	// releases the store's directory lock so this same process can
	// reopen it. (The crash-equivalence itself — reopen after a real
	// no-Close kill — is pinned by TestReplayEquivalenceQuickCheck.)
	eng.Close()
	fmt.Printf("\n-- restart --\n\n")

	start := time.Now()
	eng2, err := graphmatch.OpenEngine(graphmatch.EngineOptions{StorePath: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	st, _ := eng2.StoreStats()
	fmt.Printf("replayed %d graphs to seq %d in %v (closures rebuilt, search index warm)\n",
		eng2.Catalog().Len(), st.LastSeq, time.Since(start).Round(time.Millisecond))

	after := eng2.Match(ctx, req)
	if after.Err != nil {
		log.Fatal(after.Err)
	}
	searchAfter := eng2.Search(ctx, graphmatch.SearchRequest{
		Pattern: pattern, Algo: graphmatch.AlgoMaxSim, Xi: 0.75,
		Sim: graphmatch.SimKind("content"), K: 2,
	})
	fmt.Printf("post-crash: match qualSim=%.4f matched=%d; search top hit %q (%.4f)\n",
		after.QualSim, len(after.Mapping), searchAfter.Hits[0].Graph, searchAfter.Hits[0].Score)
	if before.QualSim != after.QualSim || len(before.Mapping) != len(after.Mapping) ||
		searchBefore.Hits[0].Graph != searchAfter.Hits[0].Graph {
		log.Fatal("replayed engine diverged from the pre-crash engine")
	}
	fmt.Printf("replayed results identical: true\n\n")

	// Compact: fold the WAL into one snapshot so the next boot replays
	// a single binary file instead of the op-by-op log.
	st, err = eng2.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot written at seq %d: %d live segment(s), %d bytes of WAL tail\n",
		st.SnapshotSeq, st.Segments, st.WALBytes)
}
