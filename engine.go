package graphmatch

import (
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/store"
)

// Serving layer. Engine turns the one-shot Matcher library into a
// long-lived service: data graphs are registered once in a catalog
// that computes and shares each graph's reachability index (with an
// LRU bound on resident closures), and match requests are dispatched
// over a worker pool that coalesces duplicate in-flight work. See
// cmd/phomd for the HTTP transport over this API and DESIGN.md for the
// architecture.
type (
	// Engine schedules match requests against registered data graphs.
	// Create one with NewEngine; Close it to release the worker pool.
	Engine = engine.Engine
	// EngineOptions configures NewEngine (worker count, closure-cache
	// bound, queue depth). The zero value picks sensible defaults.
	EngineOptions = engine.Options
	// MatchRequest is one unit of engine work: a pattern, the name of
	// a registered data graph, an algorithm, ξ, and variants.
	MatchRequest = engine.Request
	// MatchResult carries a mapping, the paper's quality metrics,
	// timing, and the coalescing flag.
	MatchResult = engine.Result
	// EngineAlgorithm names a matching procedure in a MatchRequest.
	EngineAlgorithm = engine.Algorithm
	// SimKind selects how a request derives its similarity matrix.
	SimKind = engine.SimKind
	// SearchRequest asks the engine which registered graphs match a
	// pattern best: the catalog-wide top-k ranking of Engine.Search.
	// A shingle/structural prefilter prunes the catalog before the
	// matcher runs (see MaxCandidates / MinResemblance knobs).
	SearchRequest = engine.SearchRequest
	// SearchResult carries the ranked hits plus per-stage stats
	// (candidates considered, prune rate, stage timings).
	SearchResult = engine.SearchResult
	// SearchHit is one ranked search result: a graph name with its
	// match quality and prefilter scores.
	SearchHit = engine.SearchHit
	// SearchStats reports the work one search did, stage by stage.
	SearchStats = engine.SearchStats
	// GraphPatch is a live in-place edit of a registered data graph:
	// nodes appended, edges added and deleted, contents rewritten. Apply
	// one with Engine.ApplyPatch; with a store it is durable before it
	// is acknowledged. See the internal/graph documentation for the
	// application semantics.
	GraphPatch = graph.Patch
	// ContentUpdate rewrites one node's content inside a GraphPatch.
	ContentUpdate = graph.ContentUpdate
	// StoreStats reports the durability subsystem's counters (WAL
	// position, snapshot state, recovered tails); see Engine.StoreStats.
	StoreStats = store.Stats
)

// Engine algorithm names.
const (
	// AlgoMaxCard runs compMaxCard (CPH approximation, Fig. 3).
	AlgoMaxCard = engine.MaxCard
	// AlgoMaxCard11 runs compMaxCard1−1 (CPH1-1).
	AlgoMaxCard11 = engine.MaxCard11
	// AlgoMaxSim runs compMaxSim (SPH).
	AlgoMaxSim = engine.MaxSim
	// AlgoMaxSim11 runs compMaxSim1−1 (SPH1-1).
	AlgoMaxSim11 = engine.MaxSim11
	// AlgoDecide decides p-hom exactly (exponential).
	AlgoDecide = engine.Decide
	// AlgoDecide11 decides 1-1 p-hom exactly (exponential).
	AlgoDecide11 = engine.Decide11
	// AlgoSimulation runs the graph-simulation baseline.
	AlgoSimulation = engine.Simulation
)

// Similarity kinds for MatchRequest.Sim.
const (
	// SimLabel scores 1 for equal labels, 0 otherwise (the default).
	SimLabel = engine.SimLabel
	// SimContent scores shingle resemblance of node contents.
	SimContent = engine.SimContent
)

// NewEngine starts a serving engine. A zero Options value sizes the
// worker pool to GOMAXPROCS and the closure cache to its default bound.
//
//	eng := graphmatch.NewEngine(graphmatch.EngineOptions{})
//	defer eng.Close()
//	eng.Register("web", dataGraph)
//	res := eng.Match(ctx, graphmatch.MatchRequest{
//		Pattern: pattern, GraphName: "web",
//		Algo: graphmatch.AlgoMaxCard, Xi: 0.75,
//	})
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// OpenEngine starts a serving engine with durability: when
// opts.StorePath names a directory, every catalog mutation (Register,
// Remove, ApplyPatch) is appended to a write-ahead log and fsynced
// before it is acknowledged, and OpenEngine replays the persisted
// snapshot + WAL — rebuilding closures and the search index — before
// returning.
//
//	eng, err := graphmatch.OpenEngine(graphmatch.EngineOptions{
//		StorePath:     "/var/lib/phomd",
//		SnapshotEvery: 1000, // compact the WAL every 1000 mutations
//	})
//	defer eng.Close() // drains workers, fsyncs and closes the WAL
func OpenEngine(opts EngineOptions) (*Engine, error) { return engine.Open(opts) }
