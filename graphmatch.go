// Package graphmatch implements p-homomorphism (p-hom) and 1-1
// p-homomorphism matching from "Graph Homomorphism Revisited for Graph
// Matching" (Fan, Li, Ma, Wang, Wu; PVLDB 3(1), 2010).
//
// The notions revise classical graph homomorphism and subgraph
// isomorphism for similarity-based graph matching: a mapping σ from
// pattern G1 to data graph G2 is a p-hom mapping when every node maps to
// a sufficiently similar node (mat(v, σ(v)) ≥ ξ for a node-similarity
// matrix and threshold) and every pattern edge maps to a *nonempty path*
// in the data graph, not necessarily a single edge. The 1-1 variant
// additionally requires σ injective.
//
// Because deciding (1-1) p-hom is NP-complete and the optimisation
// variants are even hard to approximate, the package exposes the paper's
// approximation algorithms, which carry an O(log²(n1·n2)/(n1·n2))
// quality guarantee:
//
//	m := graphmatch.NewMatcher(pattern, data, mat, 0.75)
//	sigma := m.MaxCard()            // compMaxCard   (CPH)
//	sigma = m.MaxCard11()           // compMaxCard¹⁻¹ (CPH1-1)
//	sigma = m.MaxSim()              // compMaxSim    (SPH)
//	sigma = m.MaxSim11()            // compMaxSim¹⁻¹ (SPH1-1)
//	q := m.QualCard(sigma)          // |dom σ| / |V1|
//
// Exact (exponential) decision procedures, the quantitative similarity
// metrics qualCard/qualSim, similarity-matrix constructors (label
// equality, shingle-based content similarity) and the graph-simulation
// baseline are also exposed. See the examples/ directory for complete
// programs and DESIGN.md for the paper-to-code map.
package graphmatch

import (
	"graphmatch/internal/core"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/simulation"
	"graphmatch/internal/vertexsim"
)

// Re-exported substrate types. Aliases keep one canonical implementation
// in internal/ while giving users stable names in this package.
type (
	// Graph is a directed, node-labelled graph; nodes carry optional
	// weights (for qualSim) and text content (for shingle similarity).
	Graph = graph.Graph
	// NodeID identifies a node within one Graph (dense, 0-based).
	NodeID = graph.NodeID
	// Node is the attribute record of one node.
	Node = graph.Node
	// Mapping is a partial node mapping σ from pattern to data graph.
	Mapping = core.Mapping
	// Matrix scores node similarity: mat(v, u) ∈ [0, 1].
	Matrix = simmatrix.Matrix
	// Metric selects qualCard or qualSim.
	Metric = core.Metric
)

// Metric values.
const (
	// MetricCard is maximum cardinality, qualCard(σ) = |dom σ| / |V1|.
	MetricCard = core.MetricCard
	// MetricSim is maximum overall similarity,
	// qualSim(σ) = Σ w(v)·mat(v, σ(v)) / Σ w(v).
	MetricSim = core.MetricSim
)

// NewGraph returns an empty graph with a capacity hint of n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromEdgeList builds a graph from a label slice and (from, to) pairs —
// the terse constructor used across the examples.
func FromEdgeList(labels []string, edges [][2]int) *Graph {
	return graph.FromEdgeList(labels, edges)
}

// LabelEquality returns the matrix scoring 1 for equal labels and 0
// otherwise — classical label matching as a similarity matrix.
func LabelEquality(g1, g2 *Graph) Matrix { return simmatrix.NewLabelEquality(g1, g2) }

// ContentSimilarity returns a matrix scoring shingle resemblance of node
// contents (falling back to labels), the Web-matching convention of the
// paper's evaluation. shingleSize ≤ 0 selects the default window.
func ContentSimilarity(g1, g2 *Graph, shingleSize int) Matrix {
	return simmatrix.FromContent(g1, g2, shingleSize)
}

// SparseMatrix returns an empty editable similarity matrix; unset pairs
// score 0.
func SparseMatrix() *simmatrix.Sparse { return simmatrix.NewSparse() }

// Matcher bundles one matching problem (pattern, data, similarity matrix,
// threshold ξ) and caches the data graph's transitive closure across
// algorithm invocations. Create it with NewMatcher; the zero value is not
// usable. A Matcher is safe for concurrent use once any method has been
// called.
type Matcher struct {
	in *core.Instance
}

// Option configures a Matcher at construction time.
type Option func(*core.Instance)

// WithPathLimit bounds the data-graph paths that pattern edges may map to
// at k hops — the fixed-length matching variant. k = 1 demands
// edge-to-edge images (similarity-relaxed graph homomorphism); without
// this option paths are unbounded, the paper's p-hom semantics.
func WithPathLimit(k int) Option {
	return func(in *core.Instance) { in.MaxPathLen = k }
}

// NewMatcher creates a matcher for pattern g1 against data g2. xi is the
// node-similarity threshold ξ ∈ [0, 1]: v may map to u only when
// mat(v, u) ≥ ξ.
func NewMatcher(g1, g2 *Graph, mat Matrix, xi float64, opts ...Option) *Matcher {
	in := core.NewInstance(g1, g2, mat, xi)
	for _, opt := range opts {
		opt(in)
	}
	return &Matcher{in: in}
}

// Symmetric returns a matcher in which pattern *paths* may also map to
// data paths (Section 3.2, Remark): the pattern is replaced by its
// transitive closure G1+ before matching.
func (m *Matcher) Symmetric() *Matcher {
	return &Matcher{in: m.in.Symmetric()}
}

// IsPHom decides G1 ≼(e,p) G2 exactly and returns a total witness mapping
// when it holds. Exponential in the worst case (the problem is
// NP-complete); intended for moderate pattern sizes.
func (m *Matcher) IsPHom() (Mapping, bool) { return m.in.Decide() }

// IsPHom11 decides G1 ≼1-1(e,p) G2 exactly, returning an injective total
// witness when it holds. Exponential in the worst case.
func (m *Matcher) IsPHom11() (Mapping, bool) { return m.in.Decide11() }

// MaxCard approximates the maximum cardinality problem CPH with algorithm
// compMaxCard (paper Fig. 3). The result is always a valid p-hom mapping
// from the induced subgraph of its domain.
func (m *Matcher) MaxCard() Mapping { return m.in.CompMaxCard() }

// MaxCard11 approximates CPH1−1 (injective mappings) with
// compMaxCard1−1.
func (m *Matcher) MaxCard11() Mapping { return m.in.CompMaxCard11() }

// MaxSim approximates the maximum overall similarity problem SPH with
// compMaxSim (weight buckets à la Halldórsson plus greedy augmentation).
func (m *Matcher) MaxSim() Mapping { return m.in.CompMaxSim() }

// MaxSim11 approximates SPH1−1.
func (m *Matcher) MaxSim11() Mapping { return m.in.CompMaxSim11() }

// PartitionedMaxCard runs compMaxCard per connected component of the
// pruned pattern (Appendix B optimisation; p-hom only).
func (m *Matcher) PartitionedMaxCard() Mapping { return m.in.PartitionedMaxCard() }

// QualCard evaluates the cardinality metric of σ against this matcher's
// pattern: |dom σ| / |V1|.
func (m *Matcher) QualCard(sigma Mapping) float64 { return m.in.QualCard(sigma) }

// QualSim evaluates the overall-similarity metric of σ:
// Σ w(v)·mat(v, σ(v)) / Σ w(v).
func (m *Matcher) QualSim(sigma Mapping) float64 { return m.in.QualSim(sigma) }

// Verify checks that σ is a valid (1-1 when injective) p-hom mapping for
// this instance, returning a descriptive error when it is not.
func (m *Matcher) Verify(sigma Mapping, injective bool) error {
	return m.in.CheckMapping(sigma, injective)
}

// Matches applies the paper's evaluation convention: the pattern matches
// the data graph when σ's quality under the metric reaches threshold.
func (m *Matcher) Matches(sigma Mapping, metric Metric, threshold float64) bool {
	return core.Matches(m.in, sigma, metric, threshold)
}

// Simulates reports whether every pattern node has at least one simulator
// in the data graph under conventional graph simulation [17] — the
// edge-to-edge baseline the paper compares against. Exposed so users can
// contrast the two notions on their own data.
func Simulates(g1, g2 *Graph, mat Matrix, xi float64) bool {
	return simulation.Compute(g1, g2, mat, xi).Matches()
}

// WeightByImportance assigns every node of g a weight derived from its
// hub/authority scores (Kleinberg's HITS), scaled to (0, 1] with the
// given floor — the node-importance signal Section 3.3 of the paper
// suggests for the qualSim metric. It returns g for chaining.
func WeightByImportance(g *Graph, minWeight float64) *Graph {
	return vertexsim.ComputeHITS(g, vertexsim.Options{}).ApplyAsWeights(g, minWeight)
}
