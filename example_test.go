package graphmatch_test

// Godoc examples for the public API. Each compiles and runs under
// `go test`; outputs are verified.

import (
	"fmt"

	"graphmatch"
)

// Matching with the maximum-cardinality metric: the pattern cannot embed
// fully (one label is missing from the data), so the best partial mapping
// is reported with its qualCard.
func ExampleMatcher_MaxCard() {
	pattern := graphmatch.FromEdgeList(
		[]string{"home", "products", "missing"},
		[][2]int{{0, 1}, {0, 2}},
	)
	data := graphmatch.FromEdgeList(
		[]string{"home", "catalog", "products"},
		[][2]int{{0, 1}, {1, 2}},
	)
	mat := graphmatch.SparseMatrix()
	mat.Set(0, 0, 1.0)
	mat.Set(1, 2, 0.9) // products found behind the catalog page

	m := graphmatch.NewMatcher(pattern, data, mat, 0.75)
	sigma := m.MaxCard()
	fmt.Printf("matched %d of %d nodes (qualCard %.2f)\n",
		len(sigma), pattern.NumNodes(), m.QualCard(sigma))
	// Output:
	// matched 2 of 3 nodes (qualCard 0.67)
}

// The maximum-overall-similarity metric prefers important nodes: with a
// heavy weight on one node, the best mapping keeps it even at the cost of
// coverage.
func ExampleMatcher_MaxSim() {
	pattern := graphmatch.FromEdgeList([]string{"x", "x"}, nil)
	pattern.SetWeight(1, 10) // node 1 is far more important
	data := graphmatch.FromEdgeList([]string{"x"}, nil)

	m := graphmatch.NewMatcher(pattern, data, graphmatch.LabelEquality(pattern, data), 0.5)
	sigma := m.MaxSim11() // only one data node: someone must lose
	_, keptHeavy := sigma[1]
	fmt.Println("kept the heavy node:", keptHeavy)
	fmt.Printf("qualSim %.2f\n", m.QualSim(sigma))
	// Output:
	// kept the heavy node: true
	// qualSim 0.91
}

// WithPathLimit(1) turns p-hom into edge-to-edge matching: a pattern edge
// can no longer ride a two-hop path.
func ExampleWithPathLimit() {
	pattern := graphmatch.FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	data := graphmatch.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	mat := graphmatch.LabelEquality(pattern, data)

	_, unbounded := graphmatch.NewMatcher(pattern, data, mat, 0.5).IsPHom()
	_, bounded := graphmatch.NewMatcher(pattern, data, mat, 0.5, graphmatch.WithPathLimit(1)).IsPHom()
	fmt.Println("p-hom:", unbounded, "— edge-to-edge:", bounded)
	// Output:
	// p-hom: true — edge-to-edge: false
}

// Graph simulation is the conventional baseline: it demands edge-to-edge
// images, so the same instance separates the two notions.
func ExampleSimulates() {
	pattern := graphmatch.FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	data := graphmatch.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	mat := graphmatch.LabelEquality(pattern, data)

	fmt.Println("simulates:", graphmatch.Simulates(pattern, data, mat, 0.5))
	// Output:
	// simulates: false
}

// ContentSimilarity derives the node-similarity matrix from page text via
// shingling, as the paper's Web experiments do.
func ExampleContentSimilarity() {
	g1 := graphmatch.NewGraph(1)
	v := g1.AddNode("page")
	g1.SetContent(v, "second hand science fiction books for collectors")
	g2 := graphmatch.NewGraph(1)
	u := g2.AddNode("page")
	g2.SetContent(u, "second hand science fiction books for collectors")

	mat := graphmatch.ContentSimilarity(g1, g2, 4)
	fmt.Printf("similarity %.1f\n", mat.Score(v, u))
	// Output:
	// similarity 1.0
}

// WeightByImportance derives qualSim weights from hub/authority scores.
func ExampleWeightByImportance() {
	g := graphmatch.FromEdgeList(
		[]string{"hub", "leaf", "leaf", "leaf"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}},
	)
	graphmatch.WeightByImportance(g, 0.1)
	fmt.Printf("hub weight %.2f, leaf weight < hub: %v\n",
		g.Weight(0), g.Weight(1) < g.Weight(0))
	// Output:
	// hub weight 1.00, leaf weight < hub: true
}
