module graphmatch

go 1.24
