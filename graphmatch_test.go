package graphmatch

import (
	"fmt"
	"testing"
)

// fig1 builds the paper's Figure 1 online-store instance through the
// public API.
func fig1() (*Graph, *Graph, Matrix) {
	gp := FromEdgeList(
		[]string{"A", "books", "audio", "textbooks", "abooks", "albums"},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 4}, {2, 5}},
	)
	g := FromEdgeList(
		[]string{"B", "books", "sports", "digital", "categories", "audio",
			"school", "arts", "audiobooks", "booksets", "DVDs", "CDs",
			"features", "genres", "albums"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 9}, {1, 5}, {4, 6},
			{4, 7}, {5, 8}, {5, 10}, {5, 11}, {3, 12}, {3, 13}, {12, 8}, {13, 14}},
	)
	mate := SparseMatrix()
	mate.Set(0, 0, 0.7)   // A → B
	mate.Set(2, 3, 0.7)   // audio → digital
	mate.Set(1, 1, 1.0)   // books → books
	mate.Set(4, 8, 0.8)   // abooks → audiobooks
	mate.Set(1, 9, 0.6)   // books → booksets
	mate.Set(3, 6, 0.6)   // textbooks → school
	mate.Set(5, 14, 0.85) // albums → albums
	return gp, g, mate
}

func TestPublicAPIFigure1(t *testing.T) {
	gp, g, mate := fig1()
	m := NewMatcher(gp, g, mate, 0.6)
	sigma, ok := m.IsPHom()
	if !ok {
		t.Fatal("Fig. 1 pattern should be p-hom to the store")
	}
	if err := m.Verify(sigma, false); err != nil {
		t.Fatal(err)
	}
	sigma11, ok := m.IsPHom11()
	if !ok {
		t.Fatal("Fig. 1 pattern should be 1-1 p-hom to the store")
	}
	if err := m.Verify(sigma11, true); err != nil {
		t.Fatal(err)
	}
	if q := m.QualCard(m.MaxCard()); q != 1 {
		t.Fatalf("MaxCard quality = %v, want 1", q)
	}
	if !m.Matches(m.MaxCard(), MetricCard, 0.75) {
		t.Fatal("full mapping should match at 0.75")
	}
	if q := m.QualSim(m.MaxSim()); q <= 0 {
		t.Fatalf("MaxSim quality = %v", q)
	}
}

func TestPublicAPISimulationContrast(t *testing.T) {
	// The package doc's motivating contrast: an edge-to-path instance that
	// p-hom accepts and simulation rejects.
	g1 := FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	g2 := FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	mat := LabelEquality(g1, g2)
	if Simulates(g1, g2, mat, 0.5) {
		t.Fatal("simulation should fail on edge-to-path data")
	}
	if _, ok := NewMatcher(g1, g2, mat, 0.5).IsPHom(); !ok {
		t.Fatal("p-hom should succeed on edge-to-path data")
	}
}

func TestPublicAPIContentSimilarity(t *testing.T) {
	g1 := NewGraph(1)
	v := g1.AddNode("page")
	g1.SetContent(v, "graph matching with path mappings and node similarity")
	g2 := NewGraph(2)
	u1 := g2.AddNode("page")
	g2.SetContent(u1, "graph matching with path mappings and node similarity")
	u2 := g2.AddNode("page")
	g2.SetContent(u2, "unrelated recipe for vegetable soup with carrots")
	mat := ContentSimilarity(g1, g2, 3)
	if mat.Score(v, u1) != 1 {
		t.Fatal("identical content should score 1")
	}
	if mat.Score(v, u2) != 0 {
		t.Fatal("unrelated content should score 0")
	}
}

func TestPublicAPIInjectiveDifference(t *testing.T) {
	g1 := FromEdgeList([]string{"A", "A", "B"}, [][2]int{{0, 2}, {1, 2}})
	g2 := FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	m := NewMatcher(g1, g2, LabelEquality(g1, g2), 0.5)
	if _, ok := m.IsPHom(); !ok {
		t.Fatal("p-hom should hold")
	}
	if _, ok := m.IsPHom11(); ok {
		t.Fatal("1-1 p-hom should fail")
	}
	if len(m.MaxCard()) != 3 || len(m.MaxCard11()) != 2 {
		t.Fatal("cardinality gap between plain and 1-1 missing")
	}
	if len(m.MaxSim11()) > len(m.MaxSim()) {
		t.Fatal("injective similarity mapping larger than plain")
	}
	if len(m.PartitionedMaxCard()) != 3 {
		t.Fatal("partitioned matcher should cover all nodes")
	}
}

// ExampleMatcher demonstrates the quickstart flow on the paper's Fig. 1
// instance.
func ExampleMatcher() {
	pattern := FromEdgeList(
		[]string{"A", "books", "audio"},
		[][2]int{{0, 1}, {0, 2}},
	)
	data := FromEdgeList(
		[]string{"B", "categories", "books", "digital"},
		[][2]int{{0, 1}, {1, 2}, {0, 3}},
	)
	mat := SparseMatrix()
	mat.Set(0, 0, 0.9) // A ~ B
	mat.Set(1, 2, 1.0) // books ~ books (reached via a path)
	mat.Set(2, 3, 0.8) // audio ~ digital

	m := NewMatcher(pattern, data, mat, 0.75)
	sigma, ok := m.IsPHom()
	fmt.Println("p-hom:", ok)
	fmt.Println("coverage:", m.QualCard(sigma))
	// Output:
	// p-hom: true
	// coverage: 1
}
